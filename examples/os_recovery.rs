//! The OS side of PT-Guard (Sections IV-F, IV-G, VII-B): what a kernel does
//! *after* the memory controller raises `PTECheckFailed` — migrate the page
//! tables off the flipping row, rebuild them from its own metadata, and, if
//! an adversary floods the CTB, re-key the memory.
//!
//! ```text
//! cargo run --release --example os_recovery
//! ```

use dram::{DramDevice, RowhammerConfig};
use memsys::system::{AccessOutcome, OsPort};
use memsys::{MemSysConfig, MemoryController, MemorySystem};
use pagetable::addr::VirtAddr;
use pagetable::space::AddressSpace;
use pagetable::x86_64::PteFlags;
use ptguard::{PtGuardConfig, PtGuardEngine};

fn main() {
    // An LPDDR4-class vulnerable device under a PT-Guard controller.
    let device = DramDevice::ddr4_4gb(RowhammerConfig {
        threshold: 4800.0,
        weak_cells_per_row: 24.0,
        ..RowhammerConfig::default()
    });
    let engine = PtGuardEngine::new(PtGuardConfig::default());
    let controller = MemoryController::new(device, Some(engine), 3.0);
    let mut sys = MemorySystem::new(MemSysConfig::default(), controller);

    // The victim process: 2048 mapped pages.
    let base = 0x55_0000_0000u64;
    let pages = 2048u64;
    let mut mappings = Vec::new();
    let mut port = OsPort::new(&mut sys);
    let mut space = AddressSpace::new(&mut port, 32).expect("space");
    for i in 0..pages {
        let va = VirtAddr::new(base + i * 4096);
        let frame = space
            .map_new(&mut port, va, PteFlags::user_data())
            .expect("map");
        mappings.push((va, frame));
    }
    let root = space.root();
    sys.set_root(root, 32);
    sys.flush_caches();
    for a in space.pte_line_addrs() {
        sys.invalidate_line(a);
    }
    println!(
        "process mapped: {pages} pages across {} page-table pages\n",
        space.table_frames().len()
    );

    // --- The attacker hammers every page-table row, persistently. ---
    let hammer = |sys: &mut MemorySystem, space: &AddressSpace| {
        let dev = sys.controller.device_mut();
        let rows_per_bank = dev.geometry().rows_per_bank;
        let mut rows: Vec<_> = space
            .table_frames()
            .iter()
            .map(|f| dev.geometry().row_of(f.base()))
            .collect();
        rows.sort();
        rows.dedup();
        for victim in rows {
            for d in [-1i64, 1] {
                if let Some(aggr) = victim.offset(d, rows_per_bank) {
                    dev.hammer(aggr, 40_000);
                }
            }
        }
    };
    hammer(&mut sys, &space);
    println!(
        "attack round 1: {} bit flips injected into DRAM",
        sys.controller.device().stats().total_flips
    );

    // The process touches its memory; PT-Guard corrects or faults.
    sys.invalidate_translation_state();
    let (mut ok, mut faults) = (0u64, 0u64);
    for (va, _) in &mappings {
        match sys.load(*va) {
            AccessOutcome::Ok { .. } => ok += 1,
            _ => faults += 1,
        }
    }
    let corrected = sys.controller.engine().unwrap().stats().corrected;
    println!("victim touches pages: {ok} ok ({corrected} walks transparently corrected), {faults} integrity exceptions\n");

    // --- OS response: migrate the leaf page-table pages to fresh frames and
    // rebuild their contents from the kernel's own mapping metadata. ---
    println!("OS response: migrating page-table pages away from the afflicted rows...");
    let victims: Vec<_> = space.table_frames()[3..].to_vec();
    {
        let mut port = OsPort::new(&mut sys);
        for v in &victims {
            space.migrate_table_page(&mut port, *v).expect("migration");
        }
        for (va, frame) in &mappings {
            let mut t = space.root();
            for level in (1..4).rev() {
                t = pagetable::table::read_entry(&port, t, va.level_index(level)).frame();
            }
            let slot = pagetable::table::entry_addr(t, va.pt_index());
            use pagetable::memory::PhysMem;
            port.write_u64(
                slot,
                pagetable::x86_64::Pte::new(*frame, PteFlags::user_data()).raw(),
            );
        }
    }
    sys.flush_caches();
    sys.invalidate_translation_state();
    for a in space.pte_line_addrs() {
        sys.invalidate_line(a);
    }
    println!(
        "migrated {} table pages; translations rebuilt\n",
        victims.len()
    );

    // --- The attacker keeps hammering; the process keeps running. ---
    hammer(&mut sys, &space);
    sys.invalidate_translation_state();
    let (mut ok2, mut wrong) = (0u64, 0u64);
    for (va, frame) in &mappings {
        if sys.load(*va).is_ok() {
            ok2 += 1;
            if sys.tlb().peek_frame(va.vpn()) != Some(*frame) {
                wrong += 1;
            }
        }
    }
    println!(
        "attack round 2 (same aggressor rows): {ok2}/{} pages load, {wrong} wrong translations",
        mappings.len()
    );
    assert_eq!(wrong, 0);
    println!("\nthe invariant held through both rounds: no tampered PTE was ever consumed,");
    println!("and the exception mechanism gave the OS everything it needed to recover.");
}
