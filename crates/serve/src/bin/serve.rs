//! `serve` — run the MAC verification service.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--port-file FILE]
//! ```
//!
//! Binds `--addr` (default `127.0.0.1:0`, an ephemeral port), prints the
//! bound address on stdout (and into `--port-file` if given, for scripted
//! startup), then serves until a client sends the in-band shutdown frame.
//! Exits 0 after a graceful drain, printing the final service counters.

use std::process::ExitCode;

use serve::server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!("usage: serve [--addr HOST:PORT] [--workers N] [--port-file FILE]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut addr = String::from("127.0.0.1:0");
    let mut cfg = ServerConfig::default();
    let mut port_file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--workers" => {
                cfg.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--port-file" => port_file = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let server = match Server::start(addr.as_str(), &cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = server.local_addr();
    println!("listening on {bound}");
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, bound.to_string()) {
            eprintln!("serve: write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let stats = server.join();
    println!(
        "served {} requests in {} batches (mean batch {:.2}): {} embeds, {} verifies, {} corrects, {} mismatches",
        stats.requests,
        stats.batches,
        stats.mean_batch_size(),
        stats.embeds,
        stats.verifies,
        stats.corrects,
        stats.mismatches,
    );
    ExitCode::SUCCESS
}
