//! Differential drivers: fast implementation vs naive reference, op for
//! op, with a ddmin-style shrinking loop that reduces a failing stream to
//! a minimal reproducer.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use memsys::cache::Cache;
use memsys::config::CacheConfig;
use memsys::mmucache::MmuCache;
use memsys::tlb::Tlb;
use pagetable::addr::{Frame, PhysAddr, VirtAddr};
use pagetable::memory::PhysMem;
use pagetable::walker::{TranslationError, Walker};
use pagetable::x86_64::{Pte, PteFlags};
use rng::SplitMix64;

use crate::ops::{
    encode_repro, gen_cache_ops, gen_mmu_ops, gen_tlb_ops, line_from_seed, CacheOp, MmuOp, TlbOp,
    WalkProbe,
};
use crate::refmodel::{RefCache, RefMmuCache, RefTlb};
use crate::refwalk::{ref_walk, RefTables, RefWalkResult};

/// A confirmed divergence between the fast and reference models, with a
/// shrunk reproducer ready to write to disk.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which differential found it (`cache`, `tlb`, `mmu`, `walker`).
    pub kind: &'static str,
    /// First-mismatch description from the minimal stream.
    pub message: String,
    /// Ops in the original failing stream.
    pub ops_total: usize,
    /// Ops left after shrinking.
    pub ops_minimal: usize,
    /// Serialised minimal reproducer ([`crate::ops::encode_repro`]).
    pub repro: Vec<u8>,
}

impl Divergence {
    /// Writes the reproducer to `dir` as `oracle-<kind>-repro.bin`,
    /// returning the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("oracle-{}-repro.bin", self.kind));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(&self.repro)?;
        Ok(path)
    }
}

/// Greedy ddmin-style shrinker: repeatedly removes chunks (halving the
/// chunk size down to single ops) while `fails` still reports a failure.
/// `fails` must be deterministic.
pub fn shrink_ops<T: Clone>(ops: &[T], fails: impl Fn(&[T]) -> bool) -> Vec<T> {
    let mut current: Vec<T> = ops.to_vec();
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && fails(&candidate) {
                current = candidate;
                reduced = true;
                // retry the same window position on the shorter stream
            } else {
                start = end;
            }
        }
        if chunk == 1 && !reduced {
            return current;
        }
        if !reduced {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// The observable surface of a cache implementation under test. Implemented
/// by the real [`Cache`] and (in tests) by deliberately buggy wrappers.
pub trait CacheModel {
    /// Demand lookup.
    fn lookup(&mut self, addr: PhysAddr) -> Option<ptguard::Line>;
    /// Install a line; returns a displaced dirty line.
    fn fill(
        &mut self,
        addr: PhysAddr,
        data: ptguard::Line,
        dirty: bool,
    ) -> Option<(PhysAddr, ptguard::Line)>;
    /// Update a resident line.
    fn update(&mut self, addr: PhysAddr, data: ptguard::Line, dirty: bool);
    /// Invalidate without writeback.
    fn invalidate(&mut self, addr: PhysAddr) -> Option<(PhysAddr, ptguard::Line)>;
    /// Flush all dirty lines.
    fn drain_dirty(&mut self) -> Vec<(PhysAddr, ptguard::Line)>;
    /// `(hits, misses, writebacks, fills)`.
    fn stats(&self) -> (u64, u64, u64, u64);
}

impl CacheModel for Cache {
    fn lookup(&mut self, addr: PhysAddr) -> Option<ptguard::Line> {
        Cache::lookup(self, addr)
    }
    fn fill(
        &mut self,
        addr: PhysAddr,
        data: ptguard::Line,
        dirty: bool,
    ) -> Option<(PhysAddr, ptguard::Line)> {
        Cache::fill(self, addr, data, dirty)
    }
    fn update(&mut self, addr: PhysAddr, data: ptguard::Line, dirty: bool) {
        Cache::update(self, addr, data, dirty);
    }
    fn invalidate(&mut self, addr: PhysAddr) -> Option<(PhysAddr, ptguard::Line)> {
        Cache::invalidate(self, addr)
    }
    fn drain_dirty(&mut self) -> Vec<(PhysAddr, ptguard::Line)> {
        Cache::drain_dirty(self)
    }
    fn stats(&self) -> (u64, u64, u64, u64) {
        let s = Cache::stats(self);
        (s.hits, s.misses, s.writebacks, s.fills)
    }
}

/// Runs one cache op stream through `fast` and a fresh [`RefCache`] of the
/// same geometry, returning the first mismatch, if any.
pub fn run_cache_ops<C: CacheModel>(
    fast: &mut C,
    size_bytes: usize,
    ways: usize,
    ops: &[CacheOp],
) -> Option<String> {
    let mut reference = RefCache::new(size_bytes, ways);
    for (i, op) in ops.iter().enumerate() {
        let mismatch = match *op {
            CacheOp::Lookup(a) => {
                let addr = PhysAddr::new(a);
                diff_value(fast.lookup(addr), reference.lookup(addr))
            }
            CacheOp::Fill(a, d, dirty) => {
                let (addr, line) = (PhysAddr::new(a), line_from_seed(d));
                diff_value(
                    fast.fill(addr, line, dirty),
                    reference.fill(addr, line, dirty),
                )
            }
            CacheOp::Update(a, d, dirty) => {
                let (addr, line) = (PhysAddr::new(a), line_from_seed(d));
                fast.update(addr, line, dirty);
                reference.update(addr, line, dirty);
                None
            }
            CacheOp::Invalidate(a) => {
                let addr = PhysAddr::new(a);
                diff_value(fast.invalidate(addr), reference.invalidate(addr))
            }
            CacheOp::Drain => {
                let mut f = fast.drain_dirty();
                let mut r = reference.drain_dirty();
                f.sort_by_key(|&(a, _)| a.as_u64());
                r.sort_by_key(|&(a, _)| a.as_u64());
                diff_value(f, r)
            }
        };
        if let Some(m) = mismatch {
            return Some(format!("op {i} {op:?}: {m}"));
        }
        if fast.stats() != reference.stats() {
            return Some(format!(
                "op {i} {op:?}: stats diverged, fast {:?} vs ref {:?}",
                fast.stats(),
                reference.stats()
            ));
        }
    }
    None
}

fn diff_value<T: PartialEq + std::fmt::Debug>(fast: T, reference: T) -> Option<String> {
    (fast != reference).then(|| format!("fast {fast:?} vs ref {reference:?}"))
}

/// Cache differential: seeded stream against the real [`Cache`]. Returns a
/// shrunk [`Divergence`] on mismatch.
#[must_use]
pub fn diff_cache(seed: u64, n_ops: usize, cfg: CacheConfig) -> Option<Divergence> {
    let ops = gen_cache_ops(&mut SplitMix64::new(seed), n_ops, cfg.sets() as u64 * 3);
    let make = || Cache::new(cfg);
    diff_cache_impl("cache", seed, cfg, &ops, make)
}

/// Cache differential against an arbitrary [`CacheModel`] factory — the
/// hook tests use to prove a deliberately buggy cache is caught and shrunk.
pub fn diff_cache_impl<C: CacheModel>(
    kind: &'static str,
    seed: u64,
    cfg: CacheConfig,
    ops: &[CacheOp],
    make_fast: impl Fn() -> C,
) -> Option<Divergence> {
    let fails =
        |subset: &[CacheOp]| run_cache_ops(&mut make_fast(), cfg.size_bytes, cfg.ways, subset);
    let _first = fails(ops)?;
    let minimal = shrink_ops(ops, |s| fails(s).is_some());
    let message = fails(&minimal).unwrap_or_else(|| "shrunk stream no longer fails".to_string());
    Some(Divergence {
        kind,
        message,
        ops_total: ops.len(),
        ops_minimal: minimal.len(),
        repro: encode_repro(seed, cfg.size_bytes as u64, &minimal),
    })
}

/// Runs one TLB op stream through the real [`Tlb`] and a [`RefTlb`].
pub fn run_tlb_ops(fast: &mut Tlb, capacity: usize, ops: &[TlbOp]) -> Option<String> {
    let mut reference = RefTlb::new(capacity);
    let pte_of = |f: u64| Pte::new(Frame(f), PteFlags::user_data());
    for (i, op) in ops.iter().enumerate() {
        let mismatch = match *op {
            TlbOp::Lookup(v) => diff_value(fast.lookup(v), reference.lookup(v)),
            TlbOp::Insert(v, f) => {
                fast.insert(v, pte_of(f));
                reference.insert(v, pte_of(f));
                None
            }
            TlbOp::Invalidate(v) => {
                fast.invalidate(v);
                reference.invalidate(v);
                None
            }
            TlbOp::Flush => {
                fast.flush();
                reference.flush();
                None
            }
        };
        if let Some(m) = mismatch {
            return Some(format!("op {i} {op:?}: {m}"));
        }
        let fs = fast.stats();
        if (fs.hits, fs.misses) != reference.stats() {
            return Some(format!(
                "op {i} {op:?}: stats diverged, fast {:?} vs ref {:?}",
                (fs.hits, fs.misses),
                reference.stats()
            ));
        }
    }
    None
}

/// TLB differential. Returns a shrunk [`Divergence`] on mismatch.
#[must_use]
pub fn diff_tlb(seed: u64, n_ops: usize, capacity: usize) -> Option<Divergence> {
    let ops = gen_tlb_ops(&mut SplitMix64::new(seed), n_ops, capacity as u64 * 2);
    let fails = |subset: &[TlbOp]| run_tlb_ops(&mut Tlb::new(capacity), capacity, subset);
    let _first = fails(&ops)?;
    let minimal = shrink_ops(&ops, |s| fails(s).is_some());
    let message = fails(&minimal).unwrap_or_else(|| "shrunk stream no longer fails".to_string());
    Some(Divergence {
        kind: "tlb",
        message,
        ops_total: ops.len(),
        ops_minimal: minimal.len(),
        repro: encode_repro(seed, capacity as u64, &minimal),
    })
}

/// Runs one MMU-cache op stream through the real [`MmuCache`] and a
/// [`RefMmuCache`].
pub fn run_mmu_ops(
    fast: &mut MmuCache,
    entries: usize,
    ways: usize,
    ops: &[MmuOp],
) -> Option<String> {
    let mut reference = RefMmuCache::new(entries, ways);
    let pte_of = |f: u64| Pte::new(Frame(f), PteFlags::table());
    for (i, op) in ops.iter().enumerate() {
        let mismatch = match *op {
            MmuOp::Lookup(a) => diff_value(
                fast.lookup(PhysAddr::new(a)),
                reference.lookup(PhysAddr::new(a)),
            ),
            MmuOp::Insert(a, f) => {
                fast.insert(PhysAddr::new(a), pte_of(f));
                reference.insert(PhysAddr::new(a), pte_of(f));
                None
            }
            MmuOp::Flush => {
                fast.flush();
                reference.flush();
                None
            }
        };
        if let Some(m) = mismatch {
            return Some(format!("op {i} {op:?}: {m}"));
        }
        let fs = fast.stats();
        if (fs.hits, fs.misses) != reference.stats() {
            return Some(format!(
                "op {i} {op:?}: stats diverged, fast {:?} vs ref {:?}",
                (fs.hits, fs.misses),
                reference.stats()
            ));
        }
    }
    None
}

/// MMU-cache differential. Returns a shrunk [`Divergence`] on mismatch.
#[must_use]
pub fn diff_mmu(seed: u64, n_ops: usize, entries: usize, ways: usize) -> Option<Divergence> {
    let ops = gen_mmu_ops(&mut SplitMix64::new(seed), n_ops, (entries as u64) * 2);
    let fails =
        |subset: &[MmuOp]| run_mmu_ops(&mut MmuCache::new(entries, ways, 2), entries, ways, subset);
    let _first = fails(&ops)?;
    let minimal = shrink_ops(&ops, |s| fails(s).is_some());
    let message = fails(&minimal).unwrap_or_else(|| "shrunk stream no longer fails".to_string());
    Some(Divergence {
        kind: "mmu",
        message,
        ops_total: ops.len(),
        ops_minimal: minimal.len(),
        repro: encode_repro(seed, entries as u64, &minimal),
    })
}

/// Flat byte-addressed memory for the fast walker: the same page-table
/// image the reference interpreter reads from its `BTreeMap` of entries.
#[derive(Debug, Default)]
pub struct FlatMem {
    bytes: BTreeMap<u64, u8>,
    size: u64,
}

impl FlatMem {
    /// An empty (all-zero) memory of `size` bytes.
    #[must_use]
    pub fn new(size: u64) -> Self {
        Self {
            bytes: BTreeMap::new(),
            size,
        }
    }
}

impl PhysMem for FlatMem {
    fn size(&self) -> u64 {
        self.size
    }
    fn read_u8(&self, addr: PhysAddr) -> u8 {
        self.bytes.get(&addr.as_u64()).copied().unwrap_or(0)
    }
    fn write_u8(&mut self, addr: PhysAddr, value: u8) {
        self.bytes.insert(addr.as_u64(), value);
    }
}

/// The randomly generated walker-differential fixture: a page-table image
/// in both representations plus the probe list.
pub struct WalkFixture {
    /// Byte-level image for the fast [`Walker`].
    pub mem: FlatMem,
    /// Entry-level image for [`ref_walk`].
    pub tables: RefTables,
    /// Root page-table frame.
    pub root: Frame,
    /// Probe virtual addresses.
    pub probes: Vec<WalkProbe>,
}

/// Physical address bits of the walker fixture (frames beyond this bound
/// trigger `PfnOutOfBounds`).
pub const WALK_PHYS_BITS: u32 = 30;

/// Builds a page-table image from `seed`: chains of 4-level mappings with
/// deliberate quirks (holes, huge pages, out-of-bounds PFNs) plus probe
/// VAs that mix mapped, neighbouring, and random addresses.
#[must_use]
pub fn build_walk_fixture(seed: u64, mappings: usize, probes: usize) -> WalkFixture {
    let mut rng = SplitMix64::new(seed ^ 0x5bd1_e995);
    let mut mem = FlatMem::new(1 << WALK_PHYS_BITS);
    let mut tables = RefTables::new();
    let root = Frame(1);
    let mut next_frame = 2u64;
    let max_frame = 1u64 << (WALK_PHYS_BITS - 12);
    let mut mapped = Vec::new();

    let write_entry =
        |mem: &mut FlatMem, tables: &mut RefTables, frame: Frame, idx: u64, raw: u64| {
            let addr = frame.0 * 4096 + idx * 8;
            mem.write_u64(PhysAddr::new(addr), raw);
            tables.insert(addr, raw);
        };

    for _ in 0..mappings {
        // Confine VAs to a few PML4/PDPT slots so chains share tables.
        let va = (rng.gen_range_u64(0, 4) << 39)
            | (rng.gen_range_u64(0, 4) << 30)
            | (rng.gen_range_u64(0, 16) << 21)
            | (rng.gen_range_u64(0, 32) << 12);
        let mut table = root;
        for level in [3usize, 2, 1, 0] {
            let idx = (va >> (12 + 9 * level)) & 0x1ff;
            let entry_addr = table.0 * 4096 + idx * 8;
            let existing = tables.get(&entry_addr).copied().unwrap_or(0);
            if existing & 1 != 0 {
                // Follow the existing chain unless it already terminated.
                let pfn = (existing & pagetable::x86_64::bits::PFN_MASK) >> 12;
                if level == 0 || existing & (1 << 7) != 0 || pfn >= max_frame {
                    break;
                }
                table = Frame(pfn);
                continue;
            }
            // Quirks: hole (not present), out-of-bounds PFN, huge leaf.
            let roll = rng.gen_range_u64(0, 100);
            if roll < 10 {
                break; // leave a hole at this level
            }
            if roll < 18 {
                let bad = Pte::new(
                    Frame(max_frame + rng.gen_range_u64(0, 64)),
                    PteFlags::table(),
                );
                write_entry(&mut mem, &mut tables, table, idx, bad.raw());
                break;
            }
            if level == 1 && roll < 33 {
                let huge_flags = PteFlags::from_bits(
                    PteFlags::user_data().bits() | pagetable::x86_64::bits::HUGE_PAGE,
                );
                let huge = Pte::new(Frame(rng.gen_range_u64(1, max_frame) & !0x1ff), huge_flags);
                write_entry(&mut mem, &mut tables, table, idx, huge.raw());
                mapped.push(va);
                break;
            }
            if level == 0 {
                let leaf = Pte::new(
                    Frame(rng.gen_range_u64(1, max_frame)),
                    PteFlags::user_data(),
                );
                write_entry(&mut mem, &mut tables, table, idx, leaf.raw());
                mapped.push(va);
                break;
            }
            let child = Frame(next_frame);
            next_frame += 1;
            write_entry(
                &mut mem,
                &mut tables,
                table,
                idx,
                Pte::new(child, PteFlags::table()).raw(),
            );
            table = child;
        }
    }

    let mut probe_list = Vec::with_capacity(probes);
    for _ in 0..probes {
        let va = match rng.gen_range_u64(0, 10) {
            0..=5 if !mapped.is_empty() => {
                let base = mapped[rng.gen_range_usize(0, mapped.len())];
                base | rng.gen_range_u64(0, 4096)
            }
            6..=7 if !mapped.is_empty() => {
                // A neighbour of a mapped page: exercises shared tables.
                let base = mapped[rng.gen_range_usize(0, mapped.len())];
                base ^ (1 << rng.gen_range_u64(12, 40))
            }
            _ => rng.next_u64() & ((1 << 48) - 1),
        };
        probe_list.push(WalkProbe(va));
    }
    WalkFixture {
        mem,
        tables,
        root,
        probes: probe_list,
    }
}

/// Compares one probe between the fast walker and the reference
/// interpreter, returning a mismatch description if they disagree.
#[must_use]
pub fn check_walk_probe(fixture: &WalkFixture, probe: WalkProbe) -> Option<String> {
    let walker = Walker::new(fixture.root, WALK_PHYS_BITS);
    let fast = walker.walk(&fixture.mem, VirtAddr::new(probe.0));
    let reference = ref_walk(&fixture.tables, fixture.root.0, WALK_PHYS_BITS, probe.0);
    let agree = match (&fast, &reference) {
        (
            Ok(w),
            RefWalkResult::Ok {
                phys,
                leaf,
                leaf_level,
                accesses,
            },
        ) => {
            w.phys.as_u64() == *phys
                && w.leaf.raw() == *leaf
                && w.leaf_level == *leaf_level
                && w.accesses.len() == accesses.len()
                && w.accesses.iter().zip(accesses).all(|(f, r)| {
                    f.entry_addr.as_u64() == r.entry_addr
                        && f.level == r.level
                        && f.pte.raw() == r.raw
                })
        }
        (Err(TranslationError::NotPresent { level }), RefWalkResult::NotPresent { level: rl }) => {
            level == rl
        }
        (
            Err(TranslationError::PfnOutOfBounds { level, pte }),
            RefWalkResult::PfnOutOfBounds { level: rl, raw },
        ) => level == rl && pte.raw() == *raw,
        _ => false,
    };
    (!agree).then(|| format!("va {:#x}: fast {fast:?} vs ref {reference:?}", probe.0))
}

/// Walker differential: random tables + probes from `seed`. Returns a
/// shrunk [`Divergence`] (probe list shrunk; tables regenerate from the
/// seed) on mismatch.
#[must_use]
pub fn diff_walker(seed: u64, mappings: usize, probes: usize) -> Option<Divergence> {
    let fixture = build_walk_fixture(seed, mappings, probes);
    let fails = |subset: &[WalkProbe]| subset.iter().find_map(|&p| check_walk_probe(&fixture, p));
    let _first = fails(&fixture.probes)?;
    let minimal = shrink_ops(&fixture.probes, |s| fails(s).is_some());
    let message = fails(&minimal).unwrap_or_else(|| "shrunk stream no longer fails".to_string());
    Some(Divergence {
        kind: "walker",
        message,
        ops_total: fixture.probes.len(),
        ops_minimal: minimal.len(),
        repro: encode_repro(seed, mappings as u64, &minimal),
    })
}

/// Decodes and re-runs a cache reproducer file against the real [`Cache`],
/// returning the mismatch it captures (`None` means it no longer fails —
/// i.e. the bug is fixed).
///
/// # Errors
///
/// Returns `Err` if the bytes are not a valid cache reproducer.
pub fn replay_cache_repro(bytes: &[u8], ways: usize) -> Result<Option<String>, String> {
    let (_seed, size_bytes, ops) = crate::ops::decode_repro::<CacheOp>(bytes)?;
    let cfg = CacheConfig {
        size_bytes: size_bytes as usize,
        ways,
        latency_cycles: 1,
    };
    Ok(run_cache_ops(
        &mut Cache::new(cfg),
        cfg.size_bytes,
        ways,
        &ops,
    ))
}

/// Decodes and re-runs a walker reproducer file, returning the captured
/// mismatch (`None` means fixed).
///
/// # Errors
///
/// Returns `Err` if the bytes are not a valid walker reproducer.
pub fn replay_walker_repro(bytes: &[u8], probes_hint: usize) -> Result<Option<String>, String> {
    let (seed, mappings, probes) = crate::ops::decode_repro::<WalkProbe>(bytes)?;
    let fixture = build_walk_fixture(seed, mappings as usize, probes_hint);
    Ok(probes.iter().find_map(|&p| check_walk_probe(&fixture, p)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CacheConfig {
        CacheConfig {
            size_bytes: 4 << 10, // 4 KB, 4-way: 16 sets — eviction-heavy
            ways: 4,
            latency_cycles: 1,
        }
    }

    #[test]
    fn cache_differential_finds_no_divergence() {
        for seed in [1u64, 2, 3] {
            let d = diff_cache(seed, 4000, small_cfg());
            assert!(d.is_none(), "unexpected divergence: {d:?}");
        }
    }

    #[test]
    fn tlb_differential_finds_no_divergence() {
        for seed in [4u64, 5, 6] {
            let d = diff_tlb(seed, 4000, 16);
            assert!(d.is_none(), "unexpected divergence: {d:?}");
        }
    }

    #[test]
    fn mmu_differential_finds_no_divergence() {
        for seed in [7u64, 8, 9] {
            let d = diff_mmu(seed, 4000, 64, 4);
            assert!(d.is_none(), "unexpected divergence: {d:?}");
        }
    }

    #[test]
    fn walker_differential_finds_no_divergence() {
        for seed in [10u64, 11, 12] {
            let d = diff_walker(seed, 200, 400);
            assert!(d.is_none(), "unexpected divergence: {d:?}");
        }
    }

    #[test]
    fn shrinker_reduces_to_the_failing_core() {
        // A stream fails iff it contains both 3 and 7 (in any order).
        let ops: Vec<u32> = (0..100).collect();
        let minimal = shrink_ops(&ops, |s| s.contains(&3) && s.contains(&7));
        let mut sorted = minimal.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![3, 7]);
    }

    /// The pre-fix `Cache::lookup(addr, write=true)` regression: a demand
    /// store marked the line dirty during lookup, before the data update.
    /// Reintroduced here as a wrapper so the differential must catch it.
    struct BuggyLookupDirtiesCache {
        inner: Cache,
    }

    impl CacheModel for BuggyLookupDirtiesCache {
        fn lookup(&mut self, addr: PhysAddr) -> Option<ptguard::Line> {
            let hit = self.inner.lookup(addr);
            if let Some(line) = hit {
                // The old bug: `w.dirty |= write` inside lookup. Model it
                // by an update that dirties without changing content.
                self.inner.update(addr, line, true);
            }
            hit
        }
        fn fill(
            &mut self,
            addr: PhysAddr,
            data: ptguard::Line,
            dirty: bool,
        ) -> Option<(PhysAddr, ptguard::Line)> {
            self.inner.fill(addr, data, dirty)
        }
        fn update(&mut self, addr: PhysAddr, data: ptguard::Line, dirty: bool) {
            self.inner.update(addr, data, dirty);
        }
        fn invalidate(&mut self, addr: PhysAddr) -> Option<(PhysAddr, ptguard::Line)> {
            self.inner.invalidate(addr)
        }
        fn drain_dirty(&mut self) -> Vec<(PhysAddr, ptguard::Line)> {
            self.inner.drain_dirty()
        }
        fn stats(&self) -> (u64, u64, u64, u64) {
            let s = self.inner.stats();
            (s.hits, s.misses, s.writebacks, s.fills)
        }
    }

    #[test]
    fn reintroduced_lookup_dirty_bug_is_caught_and_shrunk() {
        let cfg = small_cfg();
        let seed = 99u64;
        let ops = gen_cache_ops(&mut SplitMix64::new(seed), 4000, cfg.sets() as u64 * 3);
        let d = diff_cache_impl("cache-bug", seed, cfg, &ops, || BuggyLookupDirtiesCache {
            inner: Cache::new(cfg),
        })
        .expect("the reintroduced bug must diverge");
        assert!(d.ops_minimal < d.ops_total, "shrinker made no progress");
        assert!(
            d.ops_minimal <= 4,
            "minimal reproducer unexpectedly large: {} ops ({})",
            d.ops_minimal,
            d.message
        );
        // The reproducer file decodes, and the *fixed* cache passes it.
        let replay = replay_cache_repro(&d.repro, cfg.ways).expect("valid reproducer");
        assert!(
            replay.is_none(),
            "fixed cache still fails the reproducer: {replay:?}"
        );
        // Writing it to disk round-trips.
        let dir = std::env::temp_dir().join("ptguard-oracle-test");
        let path = d.write_to(&dir).expect("write reproducer");
        let bytes = std::fs::read(&path).expect("read back");
        assert_eq!(bytes, d.repro);
        let _ = std::fs::remove_file(path);
    }

    /// A deliberately wrong walker fixture probe: corrupt the reference
    /// tables after building, so fast and reference disagree — the walker
    /// differential must catch it too.
    #[test]
    fn walker_divergence_is_caught_when_tables_disagree() {
        let mut fixture = build_walk_fixture(21, 100, 200);
        // Find a probe that currently walks OK, then corrupt its leaf in
        // the reference image only.
        let probe = fixture
            .probes
            .iter()
            .copied()
            .find(|&p| {
                matches!(
                    ref_walk(&fixture.tables, fixture.root.0, WALK_PHYS_BITS, p.0),
                    RefWalkResult::Ok { .. }
                )
            })
            .expect("fixture has at least one mapped probe");
        let leaf_addr = match ref_walk(&fixture.tables, fixture.root.0, WALK_PHYS_BITS, probe.0) {
            RefWalkResult::Ok { accesses, .. } => accesses.last().unwrap().entry_addr,
            _ => unreachable!(),
        };
        let raw = fixture.tables[&leaf_addr];
        fixture.tables.insert(leaf_addr, raw ^ (1 << 13));
        assert!(
            check_walk_probe(&fixture, probe).is_some(),
            "corrupted reference table must diverge from the fast walker"
        );
    }
}
