//! Engine datapath benches: the read/write processing PT-Guard adds at the
//! memory controller, base vs Optimized (the mechanism behind Figures 6/7).

use pagetable::addr::PhysAddr;
use ptguard::{PtGuardConfig, PtGuardEngine};
use ptguard_bench::harness::{black_box, Bench};
use ptguard_bench::{sample_data_line, sample_pte_line};

fn main() {
    let mut g = Bench::group("engine");
    let addr = PhysAddr::new(0x7_0000);

    for (label, cfg) in [
        ("base", PtGuardConfig::default()),
        ("optimized", PtGuardConfig::optimized()),
        ("armv8", PtGuardConfig::armv8()),
    ] {
        let mut engine = PtGuardEngine::new(cfg);
        let pte = sample_pte_line();
        let data = sample_data_line();
        let stored_pte = engine.process_write(pte, addr).line;

        g.bench(&format!("write_pte_line/{label}"), || {
            engine.process_write(black_box(pte), addr)
        });
        g.bench(&format!("write_data_line/{label}"), || {
            engine.process_write(black_box(data), addr)
        });
        g.bench(&format!("read_pte_walk/{label}"), || {
            engine.process_read(black_box(stored_pte), addr, true)
        });
        // The Figure 7 mechanism in miniature: data reads skip the MAC
        // entirely under the identifier optimization.
        g.bench(&format!("read_data_line/{label}"), || {
            engine.process_read(black_box(data), addr, false)
        });
    }
}
