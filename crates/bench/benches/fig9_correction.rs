//! Figure 9 kernel: the fault-injection + correction pipeline at two flip
//! probabilities (DDR4-like 1/512 and LPDDR4-like 1/128).

use experiments::fig9::evaluate_cell;
use ptguard_bench::harness::Bench;

fn main() {
    let mut g = Bench::group("fig9_correction");
    for (label, p) in [("p_1_512", 1.0 / 512.0), ("p_1_128", 1.0 / 128.0)] {
        let mut seed = 0u64;
        g.bench(&format!("evaluate_200_lines/{label}"), || {
            seed += 1;
            evaluate_cell("xalancbmk", p, 200, seed)
        });
    }
}
