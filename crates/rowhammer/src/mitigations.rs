//! Prior-work Rowhammer mitigations (the paper's baselines, Section VIII-B).
//!
//! Each mitigation observes the activation stream at the memory controller /
//! DRAM and may issue victim refreshes or throttle aggressors. They share
//! two structural weaknesses the paper exploits:
//!
//! 1. *Tracking capacity*: samplers and small tables can be overwhelmed
//!    (TRRespass, Blacksmith).
//! 2. *Victim refresh at distance 1*: the refresh itself activates the
//!    distance-1 row, pushing charge out of distance-2 rows (Half-Double).
//! 3. *Design-time thresholds*: precise counters mitigate at a provisioned
//!    RTH and silently fail on denser modules with lower true thresholds.

use std::collections::HashMap;

use dram::geometry::RowId;
use dram::DramDevice;
use memsys::config::clock;

/// A Rowhammer mitigation observing the activation stream.
pub trait Mitigation {
    /// Called for every aggressor activation; may issue refreshes or delay.
    fn on_activate(&mut self, row: RowId, device: &mut DramDevice);

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Victim refreshes issued so far.
    fn refreshes_issued(&self) -> u64;

    /// Total artificial delay injected (throttling mitigations), in integer
    /// picoseconds — the same fixed-point domain as
    /// [`memsys::config::clock`], so campaign reports that aggregate it
    /// stay byte-reproducible (no float accumulation order dependence).
    fn delay_injected_ps(&self) -> u128 {
        0
    }
}

/// Boxed mitigations delegate, so heterogeneous defence matrices (the
/// attacker crate's campaign grid) can store `Box<dyn Mitigation>` cells.
impl<M: Mitigation + ?Sized> Mitigation for Box<M> {
    fn on_activate(&mut self, row: RowId, device: &mut DramDevice) {
        (**self).on_activate(row, device);
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn refreshes_issued(&self) -> u64 {
        (**self).refreshes_issued()
    }

    fn delay_injected_ps(&self) -> u128 {
        (**self).delay_injected_ps()
    }
}

/// No mitigation: the unprotected baseline.
#[derive(Debug, Default)]
pub struct NoMitigation;

impl Mitigation for NoMitigation {
    fn on_activate(&mut self, _row: RowId, _device: &mut DramDevice) {}

    fn name(&self) -> &'static str {
        "none"
    }

    fn refreshes_issued(&self) -> u64 {
        0
    }
}

/// Targeted Row Refresh: a small table of suspected aggressors.
///
/// Commercial TRR tracks only a handful of rows per bank; when an entry's
/// count reaches the threshold, the neighbours are refreshed. A many-sided
/// pattern (more aggressors than table entries) continuously evicts entries
/// and starves the defence — the TRRespass observation.
#[derive(Debug)]
pub struct Trr {
    table_size: usize,
    refresh_threshold: u64,
    /// (row, activation count, insertion sequence).
    table: Vec<(RowId, u64, u64)>,
    seq: u64,
    refreshes: u64,
}

impl Trr {
    /// Creates a TRR engine with `table_size` tracked rows and a refresh
    /// trigger at `refresh_threshold` activations.
    #[must_use]
    pub fn new(table_size: usize, refresh_threshold: u64) -> Self {
        Self {
            table_size,
            refresh_threshold,
            table: Vec::new(),
            seq: 0,
            refreshes: 0,
        }
    }

    /// A DDR4-typical configuration: 4 entries, refresh at RTH/4.
    #[must_use]
    pub fn ddr4_typical(rth: u64) -> Self {
        Self::new(4, (rth / 4).max(1))
    }
}

impl Mitigation for Trr {
    fn on_activate(&mut self, row: RowId, device: &mut DramDevice) {
        self.seq += 1;
        if let Some(entry) = self.table.iter_mut().find(|(r, _, _)| *r == row) {
            entry.1 += 1;
            if entry.1 >= self.refresh_threshold {
                entry.1 = 0;
                let rows = device.geometry().rows_per_bank;
                for d in [-1i64, 1] {
                    if let Some(v) = row.offset(d, rows) {
                        device.refresh_row(v);
                        self.refreshes += 1;
                    }
                }
            }
            return;
        }
        if self.table.len() < self.table_size {
            self.table.push((row, 1, self.seq));
        } else {
            // Capacity exhausted: evict the coldest entry, oldest first on
            // ties — the lossy behaviour many-sided patterns exploit (any
            // pattern with more concurrent aggressors than table entries
            // keeps cycling them out before they accumulate).
            let coldest = self
                .table
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, c, s))| (*c, *s))
                .map(|(i, _)| i)
                .expect("non-empty");
            self.table[coldest] = (row, 1, self.seq);
        }
    }

    fn name(&self) -> &'static str {
        "TRR"
    }

    fn refreshes_issued(&self) -> u64 {
        self.refreshes
    }
}

/// PARA: refresh each neighbour with a small probability per activation.
///
/// Stateless, but its protection is only probabilistic and the refreshes it
/// issues are distance-1 activations — Half-Double fodder.
#[derive(Debug)]
pub struct Para {
    probability: f64,
    refreshes: u64,
    rng_state: u64,
}

impl Para {
    /// Creates a PARA engine refreshing neighbours with `probability`.
    #[must_use]
    pub fn new(probability: f64, seed: u64) -> Self {
        Self {
            probability,
            refreshes: 0,
            rng_state: seed | 1,
        }
    }

    fn next_f64(&mut self) -> f64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Mitigation for Para {
    fn on_activate(&mut self, row: RowId, device: &mut DramDevice) {
        let rows = device.geometry().rows_per_bank;
        for d in [-1i64, 1] {
            if self.next_f64() < self.probability {
                if let Some(v) = row.offset(d, rows) {
                    device.refresh_row(v);
                    self.refreshes += 1;
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "PARA"
    }

    fn refreshes_issued(&self) -> u64 {
        self.refreshes
    }
}

/// Graphene-style exact aggressor counting via a Misra-Gries summary.
///
/// Guarantees no row exceeds the provisioned threshold between refreshes —
/// *at the provisioned threshold*. Two failure modes remain: modules whose
/// true RTH is lower than provisioned, and Half-Double (its own victim
/// refreshes hammer distance-2 rows).
#[derive(Debug)]
pub struct Graphene {
    counters: HashMap<RowId, u64>,
    capacity: usize,
    refresh_threshold: u64,
    refreshes: u64,
}

impl Graphene {
    /// Creates a Graphene engine sized for `capacity` concurrent aggressors
    /// that refreshes victims every `refresh_threshold` activations.
    #[must_use]
    pub fn new(capacity: usize, refresh_threshold: u64) -> Self {
        Self {
            counters: HashMap::new(),
            capacity,
            refresh_threshold,
            refreshes: 0,
        }
    }
}

impl Mitigation for Graphene {
    fn on_activate(&mut self, row: RowId, device: &mut DramDevice) {
        let count = {
            let c = self.counters.entry(row).or_insert(0);
            *c += 1;
            *c
        };
        if self.counters.len() > self.capacity {
            // Misra-Gries decrement step: decay all counters.
            self.counters.retain(|_, c| {
                *c -= 1;
                *c > 0
            });
        }
        if count >= self.refresh_threshold {
            self.counters.insert(row, 0);
            let rows = device.geometry().rows_per_bank;
            for d in [-1i64, 1] {
                if let Some(v) = row.offset(d, rows) {
                    device.refresh_row(v);
                    self.refreshes += 1;
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "Graphene"
    }

    fn refreshes_issued(&self) -> u64 {
        self.refreshes
    }
}

/// Blockhammer-style aggressor throttling.
///
/// Rows whose activation count crosses the blacklist threshold are delayed
/// so they cannot reach the provisioned RTH within a refresh window. Relies
/// on the same design-time threshold assumption, and can add tens of
/// microseconds of delay even to benign workloads.
#[derive(Debug)]
pub struct Blockhammer {
    blacklist_threshold: u64,
    throttle_delay_ns: f64,
    /// The per-activation delay in integer picoseconds, rounded once at
    /// construction — the single rounding point of the accounting.
    throttle_delay_ps: u128,
    counters: HashMap<RowId, u64>,
    refreshes: u64,
    delay_ps: u128,
}

impl Blockhammer {
    /// Creates a throttler that blacklists rows at `blacklist_threshold`
    /// activations and delays further activations by `throttle_delay_ns`.
    #[must_use]
    pub fn new(blacklist_threshold: u64, throttle_delay_ns: f64) -> Self {
        Self {
            blacklist_threshold,
            throttle_delay_ns,
            throttle_delay_ps: clock::ns_to_ps(throttle_delay_ns),
            counters: HashMap::new(),
            refreshes: 0,
            delay_ps: 0,
        }
    }
}

impl Mitigation for Blockhammer {
    fn on_activate(&mut self, row: RowId, device: &mut DramDevice) {
        let c = self.counters.entry(row).or_insert(0);
        *c += 1;
        if *c > self.blacklist_threshold {
            device.advance_time(self.throttle_delay_ns);
            self.delay_ps += self.throttle_delay_ps;
        }
    }

    fn name(&self) -> &'static str {
        "Blockhammer"
    }

    fn refreshes_issued(&self) -> u64 {
        self.refreshes
    }

    fn delay_injected_ps(&self) -> u128 {
        self.delay_ps
    }
}

/// SoftTRR (Zhang et al., ATC 2022): software-tracked row refresh for the
/// rows holding page tables only (Section II-E.3 of the PT-Guard paper).
///
/// The kernel counts activations of PT-adjacent rows via PMU sampling and
/// re-reads (refreshes) PT rows when a neighbour's count crosses a design
/// threshold. Structurally it *is* TRR in software, so it inherits TRR's
/// failure modes: Half-Double (its refreshes activate distance-1 rows) and
/// module thresholds below the design value. It also protects only rows it
/// knows hold page tables.
#[derive(Debug)]
pub struct SoftTrr {
    /// Rows registered as holding page-table pages.
    pt_rows: std::collections::HashSet<RowId>,
    refresh_threshold: u64,
    counters: HashMap<RowId, u64>,
    refreshes: u64,
}

impl SoftTrr {
    /// Creates a SoftTRR instance refreshing PT rows when an adjacent row
    /// accumulates `refresh_threshold` activations.
    #[must_use]
    pub fn new(refresh_threshold: u64) -> Self {
        Self {
            pt_rows: std::collections::HashSet::new(),
            refresh_threshold,
            counters: HashMap::new(),
            refreshes: 0,
        }
    }

    /// Registers a row as holding page-table pages (the kernel knows its
    /// own allocations).
    pub fn register_pt_row(&mut self, row: RowId) {
        self.pt_rows.insert(row);
    }

    /// Whether `row` has a registered PT row within `dist` rows.
    fn near_pt_row(&self, row: RowId, dist: i64, rows_per_bank: u32) -> Option<RowId> {
        for d in [-dist, dist] {
            if let Some(r) = row.offset(d, rows_per_bank) {
                if self.pt_rows.contains(&r) {
                    return Some(r);
                }
            }
        }
        None
    }
}

impl Mitigation for SoftTrr {
    fn on_activate(&mut self, row: RowId, device: &mut DramDevice) {
        let rows = device.geometry().rows_per_bank;
        // Software only samples rows near its page tables (it cannot afford
        // to track all of DRAM).
        if self.near_pt_row(row, 1, rows).is_none() {
            return;
        }
        let c = self.counters.entry(row).or_insert(0);
        *c += 1;
        if *c >= self.refresh_threshold {
            *c = 0;
            if let Some(pt) = self.near_pt_row(row, 1, rows) {
                device.refresh_row(pt);
                self.refreshes += 1;
            }
        }
    }

    fn name(&self) -> &'static str {
        "SoftTRR"
    }

    fn refreshes_issued(&self) -> u64 {
        self.refreshes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram::RowhammerConfig;

    fn device() -> DramDevice {
        DramDevice::ddr4_4gb(RowhammerConfig {
            threshold: 2000.0,
            ..RowhammerConfig::default()
        })
    }

    #[test]
    fn trr_refreshes_neighbours_of_tracked_row() {
        let mut d = device();
        let mut trr = Trr::new(4, 100);
        let row = RowId { bank: 0, row: 500 };
        for _ in 0..100 {
            trr.on_activate(row, &mut d);
        }
        assert_eq!(trr.refreshes_issued(), 2);
    }

    #[test]
    fn trr_table_thrashes_under_many_sided_pressure() {
        let mut d = device();
        let mut trr = Trr::new(4, 100);
        // 12 aggressors round-robin: the 4-entry table keeps evicting, so
        // no row ever accumulates 100 tracked activations.
        for i in 0..100_000u32 {
            let row = RowId {
                bank: 0,
                row: 1000 + 2 * (i % 12),
            };
            trr.on_activate(row, &mut d);
        }
        assert_eq!(
            trr.refreshes_issued(),
            0,
            "many-sided pattern must starve TRR"
        );
    }

    #[test]
    fn para_refresh_rate_matches_probability() {
        let mut d = device();
        let mut para = Para::new(0.01, 42);
        let row = RowId { bank: 0, row: 500 };
        for _ in 0..100_000 {
            para.on_activate(row, &mut d);
        }
        let r = para.refreshes_issued() as f64;
        assert!(
            (1200.0..2800.0).contains(&r),
            "refreshes = {r} (expect ≈2000)"
        );
    }

    #[test]
    fn graphene_caps_untracked_escape() {
        let mut d = device();
        let mut g = Graphene::new(64, 1000);
        let row = RowId { bank: 1, row: 42 };
        for _ in 0..5000 {
            g.on_activate(row, &mut d);
        }
        assert!(
            g.refreshes_issued() >= 8,
            "refreshes = {}",
            g.refreshes_issued()
        );
    }

    #[test]
    fn softtrr_protects_registered_pt_rows_from_double_sided() {
        let mut d = device();
        let pt = RowId { bank: 0, row: 500 };
        // Fill the PT row with ones so it is flippable in principle.
        let base = d.geometry().row_base(pt).as_u64();
        for i in 0..u64::from(d.geometry().row_bytes) {
            use pagetable::memory::PhysMem;
            d.write_u8(pagetable::addr::PhysAddr::new(base + i), 0xff);
        }
        let mut s = SoftTrr::new(250);
        s.register_pt_row(pt);
        for _ in 0..8000 {
            s.on_activate(RowId { bank: 0, row: 499 }, &mut d);
            d.hammer(RowId { bank: 0, row: 499 }, 1);
            s.on_activate(RowId { bank: 0, row: 501 }, &mut d);
            d.hammer(RowId { bank: 0, row: 501 }, 1);
        }
        assert!(s.refreshes_issued() > 0);
        let flips_in_pt = d.flips().iter().filter(|f| f.row == pt).count();
        assert_eq!(flips_in_pt, 0, "SoftTRR must keep the PT row alive");
    }

    #[test]
    fn softtrr_ignores_rows_it_does_not_know_about() {
        let mut d = device();
        let mut s = SoftTrr::new(250);
        s.register_pt_row(RowId { bank: 0, row: 500 });
        for _ in 0..10_000 {
            s.on_activate(RowId { bank: 0, row: 900 }, &mut d);
        }
        assert_eq!(
            s.refreshes_issued(),
            0,
            "unregistered regions are invisible to software"
        );
    }

    #[test]
    fn blockhammer_throttles_hot_rows_only() {
        let mut d = device();
        let mut b = Blockhammer::new(100, 1000.0);
        let hot = RowId { bank: 0, row: 7 };
        let cold = RowId { bank: 0, row: 9999 };
        for _ in 0..50 {
            b.on_activate(cold, &mut d);
        }
        assert_eq!(b.delay_injected_ps(), 0);
        for _ in 0..200 {
            b.on_activate(hot, &mut d);
        }
        // 100 throttled activations of exactly 1 µs each: the integer
        // accounting is exact, not approximate.
        assert_eq!(b.delay_injected_ps(), 100 * clock::ns_to_ps(1000.0));
    }
}
