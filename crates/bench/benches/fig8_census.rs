//! Figure 8 kernel: census generation + classification throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use workloads::pte_census::{classify_line, generate_process, run_census, CensusConfig};

fn bench_census(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_census");
    g.sample_size(10);

    let cfg = CensusConfig { lines_per_process: 600, ..CensusConfig::default() };
    g.bench_function("generate_one_process", |b| {
        let mut pid = 0usize;
        b.iter(|| {
            pid += 1;
            generate_process(black_box(&cfg), pid)
        })
    });

    let proc40 = generate_process(&cfg, 40);
    g.bench_function("classify_600_lines", |b| {
        b.iter(|| {
            proc40
                .lines
                .iter()
                .map(|l| classify_line(black_box(l)))
                .count()
        })
    });

    let small = CensusConfig { processes: 40, lines_per_process: 150, ..CensusConfig::default() };
    g.bench_function("census_40_processes", |b| b.iter(|| run_census(black_box(&small))));
    g.finish();
}

criterion_group!(benches, bench_census);
criterion_main!(benches);
