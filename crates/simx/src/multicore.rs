//! The multi-core model of Section VII-C.
//!
//! The paper evaluates four out-of-order cores in gem5 SE mode with 16 GB
//! DDR4 and 1 MB/core shared LLC, modelling baseline PT-Guard as a constant
//! MAC latency on all DRAM reads. Slowdowns shrink relative to single-core
//! for two reasons the paper names explicitly: (i) the O3 core overlaps
//! memory stalls, and (ii) channel contention lengthens base DRAM access
//! time, diluting the constant MAC delay.
//!
//! We model both effects directly on top of the single-core machinery:
//! each core runs its own L1/L2 over a shared-capacity LLC configuration;
//! an *overlap factor* hides a fraction of every memory stall (O3), and a
//! *contention factor* scales DRAM latency with core count.

use memsys::system::OsPort;
use memsys::{MemSysConfig, MemoryController, MemorySystem};
use pagetable::addr::VirtAddr;
use pagetable::space::AddressSpace;
use pagetable::x86_64::PteFlags;
use pagetable::PAGE_SIZE;
use ptguard::{PtGuardConfig, PtGuardEngine};

use dram::{DramDevice, DramGeometry, DramTiming, RowhammerConfig};
use workloads::multiprog::Bundle;
use workloads::tracegen::{Op, TraceGenerator};

use crate::driver::WindowedDriver;
use crate::source::OpSource;

/// Multi-core model parameters.
#[derive(Debug, Clone, Copy)]
pub struct MultiCoreConfig {
    /// Number of cores (paper: 4).
    pub cores: usize,
    /// Fraction of each memory stall the O3 core hides (0 = in-order).
    pub o3_overlap: f64,
    /// DRAM latency multiplier from channel contention.
    pub contention: f64,
    /// Instructions per core.
    pub instructions_per_core: u64,
    /// DRAM capacity in GB (paper: 16).
    pub dram_gb: u64,
    /// Per-core memory-level parallelism window (see
    /// [`MemSysConfig::mlp`]); `1` reproduces the blocking O3 model
    /// bit-for-bit.
    pub mlp: usize,
}

impl Default for MultiCoreConfig {
    fn default() -> Self {
        Self {
            cores: 4,
            o3_overlap: 0.6,
            contention: 2.5,
            instructions_per_core: 100_000,
            dram_gb: 16,
            mlp: 1,
        }
    }
}

/// Per-bundle result.
#[derive(Debug, Clone)]
pub struct BundleResult {
    /// Bundle label.
    pub name: String,
    /// Weighted-speedup-style slowdown of PT-Guard vs baseline
    /// (`cycles_guard / cycles_base − 1`, averaged over cores).
    pub slowdown: f64,
}

/// Runs one core's workload from `source` and returns its cycle count.
///
/// Generic over the op source so a core can execute a recorded trace
/// instead of a live generator; `profile` sizes the mapped address span.
pub fn run_core_from_source<S: OpSource>(
    mut source: S,
    profile: workloads::WorkloadProfile,
    guard: Option<PtGuardConfig>,
    cfg: &MultiCoreConfig,
) -> u64 {
    // Per-core view: private L1/L2, a 1 MB slice of the shared LLC, and a
    // contended DRAM channel.
    let mut mem_cfg = MemSysConfig::default();
    mem_cfg.llc.size_bytes = 1 << 20;
    mem_cfg.mlp = cfg.mlp;
    let mut timing = DramTiming::default();
    timing.t_rcd_ns *= cfg.contention;
    timing.t_rp_ns *= cfg.contention;
    timing.t_cas_ns *= cfg.contention;
    let geometry = DramGeometry::with_capacity(cfg.dram_gb << 30);
    let device = DramDevice::new(geometry, timing, RowhammerConfig::immune());
    let engine = guard.map(PtGuardEngine::new);
    let controller = MemoryController::new(device, engine, mem_cfg.core_ghz);
    let mut sys = MemorySystem::new(mem_cfg, controller);

    let base = TraceGenerator::HEAP_BASE;
    let pages = profile.hot_pages + profile.stream_pages;
    let mut port = OsPort::new(&mut sys);
    let mut space = AddressSpace::new(&mut port, 34).expect("root");
    for i in 0..pages {
        space
            .map_new(
                &mut port,
                VirtAddr::new(base + i * PAGE_SIZE as u64),
                PteFlags::user_data(),
            )
            .expect("map");
    }
    let root = space.root();
    sys.set_root(root, 34);
    sys.flush_caches();

    // O3 core: one cycle per instruction plus the *unhidden* fraction of
    // the memory latency, with up to `mlp` memory ops in flight. The first
    // pass warms caches and TLB (unmeasured, like the paper's 25
    // Bn-instruction fast-forward); the second pass is the measured region.
    // Each pass drains its window and the measured pass resets both clocks,
    // so warm-up completion times cannot leak into the measurement.
    //
    // The core clock runs in integer milli-cycles: each instruction adds
    // 1000, each retire adds the unhidden fraction of the miss latency
    // with the overlap factor quantised once (`keep_millis` per cycle).
    // An f64 clock drifts at long horizons — past 2^53 the ulp exceeds a
    // cycle and `+= 1.0` stops advancing; integers cannot lose ticks.
    let keep_millis = ((1.0 - cfg.o3_overlap) * 1000.0).round() as u64;
    let mut driver = WindowedDriver::new(cfg.mlp, 1000, keep_millis);
    for phase in 0..2 {
        if phase == 1 {
            driver.reset_clocks();
        }
        for _ in 0..cfg.instructions_per_core {
            driver.tick_instruction();
            let (va, write) = match source.next_op() {
                Op::Compute => continue,
                Op::Load(va) => (va, false),
                Op::Store(va) => (va, true),
            };
            driver.mem_op(&mut sys, va, write);
        }
        driver.drain(&mut sys);
    }
    (driver.clock() + 500) / 1000
}

/// Evaluates one bundle: per-core slowdown of PT-Guard vs baseline,
/// averaged across cores (each core runs with a distinct seed).
#[must_use]
pub fn evaluate_bundle(
    bundle: &Bundle,
    guard: PtGuardConfig,
    cfg: &MultiCoreConfig,
) -> BundleResult {
    let mut total = 0.0;
    for (core, w) in bundle.workloads.iter().enumerate() {
        let seed = 1000 + core as u64;
        let base = run_core_from_source(TraceGenerator::new(*w, seed), *w, None, cfg);
        let guarded = run_core_from_source(TraceGenerator::new(*w, seed), *w, Some(guard), cfg);
        total += guarded as f64 / base as f64 - 1.0;
    }
    BundleResult {
        name: bundle.name.clone(),
        slowdown: total / bundle.workloads.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::multiprog::same_bundles;

    #[test]
    fn multicore_slowdown_is_small() {
        let cfg = MultiCoreConfig {
            instructions_per_core: 40_000,
            ..MultiCoreConfig::default()
        };
        // Pick a memory-hungry SAME bundle (worst case in the paper).
        let bundles = same_bundles(2); // 2 cores for test speed
        let lbm = bundles.iter().find(|b| b.name == "SAME-lbm").unwrap();
        let r = evaluate_bundle(lbm, PtGuardConfig::default(), &cfg);
        assert!(
            r.slowdown >= -0.002,
            "guard can't be meaningfully faster: {}",
            r.slowdown
        );
        assert!(
            r.slowdown < 0.05,
            "multi-core slowdown should be small: {}",
            r.slowdown
        );
    }
}
