//! Memory-massaging playbooks: steering the victim page-table page.
//!
//! Every known page-table Rowhammer exploit starts the same way: occupy
//! physical memory so that the *next* page-table page the OS allocates
//! lands in an attacker-chosen DRAM row, flanked by attacker-controlled
//! aggressor rows. The playbooks differ only in how precisely they can aim:
//!
//! * **PFN-aware** (rooted helper / pagemap leak): exact placement.
//! * **Hugepage spray**: 2 MB-aligned contiguous blocks give row-accurate
//!   placement most of the time, off-by-one-row otherwise.
//! * **THP collapse**: transparent-hugepage compaction migrates frames
//!   behind the attacker's back, so the error spreads to ±2 rows.
//! * **Bank-conflict timing** (SPOILER-style): row timing side channels
//!   resolve the bank exactly but the row only to ±1.
//!
//! The mechanics are modelled deterministically over the repo's
//! buddy-style [`pagetable::space::FrameAllocator`]: the attacker burns
//! bump-allocated frames up to the target region, punches a hole with
//! [`AddressSpace::free_frame`], and the next page-table allocation pops
//! the hole (LIFO reuse) — exactly the spray-and-free dance of the
//! Seaborn/Drammer exploits. The strategy's aiming error decides *where*
//! the hole is punched relative to the row the attacker believes it is.

use dram::geometry::RowId;
use memsys::system::OsPort;
use pagetable::addr::{Frame, PhysAddr, VirtAddr};
use pagetable::space::AddressSpace;
use pagetable::x86_64::PteFlags;
use rng::SplitMix64;

use crate::rig::Victim;

/// Base of the attacker-visible virtual window. Four 2 MB regions under a
/// shared PML4/PDPT/PD: benign, aggressor-low, victim, aggressor-high.
pub const VA_BASE: u64 = 0x40_0000_0000;

const REGION: u64 = 2 << 20;

/// A memory-massaging strategy: how precisely the attacker can steer the
/// victim page-table page, and what the spray costs.
pub trait Allocator: Sync {
    /// Playbook name for reports.
    fn name(&self) -> &'static str;

    /// Seeded row-placement error: how many rows the victim PT page
    /// actually lands away from where the attacker *believes* it is.
    fn row_error(&self, rng: &mut SplitMix64) -> i64;

    /// Whether the spray works in 2 MB-aligned blocks (hugepages), which
    /// burns frames up to the next 512-frame boundary before aiming.
    fn hugepage_aligned(&self) -> bool {
        false
    }
}

/// Exact placement from a physical-address oracle (pagemap, rooted
/// co-tenant, or a prior info leak).
#[derive(Debug)]
pub struct PfnAware;

impl Allocator for PfnAware {
    fn name(&self) -> &'static str {
        "pfn-aware"
    }

    fn row_error(&self, _rng: &mut SplitMix64) -> i64 {
        0
    }
}

/// Hugepage spray-and-release (Drammer / Seaborn): contiguous 2 MB blocks
/// make row arithmetic reliable, but the release order can shift the
/// reused frame by one row.
#[derive(Debug)]
pub struct HugepageSpray;

impl Allocator for HugepageSpray {
    fn name(&self) -> &'static str {
        "hugepage-spray"
    }

    fn row_error(&self, rng: &mut SplitMix64) -> i64 {
        match rng.next_f64() {
            x if x < 0.75 => 0,
            x if x < 0.875 => -1,
            _ => 1,
        }
    }

    fn hugepage_aligned(&self) -> bool {
        true
    }
}

/// Transparent-hugepage collapse: khugepaged migrates the sprayed frames
/// during compaction, so the attacker's row estimate degrades to ±2.
#[derive(Debug)]
pub struct ThpCollapse;

impl Allocator for ThpCollapse {
    fn name(&self) -> &'static str {
        "thp-collapse"
    }

    fn row_error(&self, rng: &mut SplitMix64) -> i64 {
        match rng.next_f64() {
            x if x < 0.5 => 0,
            x if x < 0.7 => -1,
            x if x < 0.9 => 1,
            x if x < 0.95 => -2,
            _ => 2,
        }
    }

    fn hugepage_aligned(&self) -> bool {
        true
    }
}

/// Bank-conflict (SPOILER-style) timing massage: row-buffer-conflict
/// latencies resolve the bank exactly, the row only to ±1.
#[derive(Debug)]
pub struct BankConflict;

impl Allocator for BankConflict {
    fn name(&self) -> &'static str {
        "bank-conflict"
    }

    fn row_error(&self, rng: &mut SplitMix64) -> i64 {
        match rng.next_f64() {
            x if x < 0.5 => 0,
            x if x < 0.75 => -1,
            _ => 1,
        }
    }
}

/// The campaign's allocator playbooks, in report order.
pub static ALLOCATORS: [&dyn Allocator; 4] =
    [&PfnAware, &HugepageSpray, &ThpCollapse, &BankConflict];

/// Where everything ended up after massaging.
#[derive(Debug)]
pub struct Placement {
    /// Target bank.
    pub bank: u32,
    /// The row the attacker *believes* holds the victim PT page.
    pub target_row: u32,
    /// The row where the victim PT page actually landed.
    pub actual_row: RowId,
    /// Rows of aiming error (`actual − target`, strategy-drawn).
    pub row_error: i64,
    /// The frame holding the victim page-table page.
    pub victim_pt: Frame,
    /// The aggressor rows the hammerers will drive (`target ± 1`).
    pub aggressor_rows: [RowId; 2],
    /// Physical line addresses of the two aggressor leaf PTEs (for
    /// PThammer's per-round cache-line eviction).
    pub aggressor_leaf_lines: [PhysAddr; 2],
    /// Attacker VAs whose walks touch the aggressor PT pages.
    pub aggressor_vas: [VirtAddr; 2],
    /// Victim VAs mapped through the victim PT page (one PTE per line).
    pub victim_vas: Vec<VirtAddr>,
    /// Expected data frame of each victim VA (for hijack detection).
    pub victim_frames: Vec<Frame>,
    /// A benign mapping far from the blast radius (false-positive probe).
    pub benign_va: VirtAddr,
    /// Frames the spray burned to reach the target region.
    pub frames_burned: u64,
}

/// Runs the massaging playbook against a freshly booted [`Victim`]:
/// spray-burn to the target region, land the two aggressor PT pages in
/// rows `target ± 1`, punch a hole where the strategy's aim says the
/// victim PT will go, and let the OS's next page-table allocation pop it.
///
/// `jitter` offsets the target row within the sprayable region so
/// different trials exercise different weak-cell populations.
///
/// Against a CATT-partitioned victim ([`Victim::build_isolated`]) the same
/// grooming runs to completion, but the OS ignores every groomed hole: page
/// tables come from the isolated pool, so the aggressor rows the hammerers
/// drive (`target ± 1`) hold only attacker data and the victim PT lands in
/// the pool, behind the guard band — the attack is disarmed at allocation
/// time. `actual_row` and `aggressor_leaf_lines` report where the PT pages
/// really went in either case.
///
/// # Panics
///
/// Panics if physical memory is exhausted (cannot happen at 4 GB) or — for
/// non-isolated victims — a page-table page lands somewhere other than the
/// groomed frame, which would mean the allocator model and the massage
/// disagree.
#[must_use]
pub fn massage(
    v: &mut Victim,
    strategy: &dyn Allocator,
    bank: u32,
    jitter: u32,
    victim_pages: usize,
    rng: &mut SplitMix64,
) -> Placement {
    let geometry = *v.sys.controller.device().geometry();
    let frame_of = |row: u32| Frame(geometry.row_base(RowId { bank, row }).as_u64() >> 12);

    let Victim { sys, space } = v;
    let isolated = space.table_pool().is_some();
    let mut port = OsPort::new(sys);

    let benign_va = VirtAddr::new(VA_BASE);
    let va_lo = VirtAddr::new(VA_BASE + REGION);
    let victim_base = VA_BASE + 2 * REGION;
    let va_hi = VirtAddr::new(VA_BASE + 3 * REGION);

    // Prime the shared upper levels (PML4/PDPT/PD) and the benign region's
    // PT now, so later `map` calls allocate exactly one frame: the leaf PT.
    let benign_data = space.alloc_frame(&mut port).expect("oom");
    space
        .map(&mut port, benign_va, benign_data, PteFlags::user_data())
        .expect("benign map");

    // Pre-allocate every data frame before aiming; they land in low rows,
    // far from the blast radius, and keep the groomed holes for PT pages.
    let aggressor_data = [
        space.alloc_frame(&mut port).expect("oom"),
        space.alloc_frame(&mut port).expect("oom"),
    ];
    let victim_frames: Vec<Frame> = (0..victim_pages)
        .map(|_| space.alloc_frame(&mut port).expect("oom"))
        .collect();

    fn burn_to(space: &mut AddressSpace, port: &mut OsPort, burned: &mut u64, last: Frame) {
        loop {
            let f = space.alloc_frame(port).expect("oom");
            *burned += 1;
            if f >= last {
                assert_eq!(f, last, "burn overshot the groomed frame");
                return;
            }
        }
    }
    let mut burned = 0u64;

    // Hugepage sprays allocate whole 2 MB blocks: burn to the next
    // 512-frame boundary before aiming.
    if strategy.hugepage_aligned() {
        let f = space.alloc_frame(&mut port).expect("oom");
        burned += 1;
        if f.0 % 512 != 511 {
            burn_to(
                space,
                &mut port,
                &mut burned,
                Frame(f.0 + (511 - f.0 % 512)),
            );
        }
    }

    // Aim: a row comfortably above the spray watermark, jittered per trial.
    let probe = space.alloc_frame(&mut port).expect("oom");
    burned += 1;
    let watermark_row = geometry.row_of(probe.base()).row;
    let target_row = watermark_row + 4 + jitter;

    // Land the aggressor PT pages at the first frame of rows target ± 1.
    let fa_lo = frame_of(target_row - 1);
    let fa_hi = frame_of(target_row + 1);
    burn_to(space, &mut port, &mut burned, Frame(fa_lo.0 - 1));
    space
        .map(&mut port, va_lo, aggressor_data[0], PteFlags::user_data())
        .expect("aggressor-low map");
    let pt_lo = *space.table_frames().last().unwrap();
    burn_to(space, &mut port, &mut burned, Frame(fa_hi.0 - 1));
    space
        .map(&mut port, va_hi, aggressor_data[1], PteFlags::user_data())
        .expect("aggressor-high map");
    let pt_hi = *space.table_frames().last().unwrap();
    if !isolated {
        assert_eq!(pt_lo, fa_lo, "aggressor-low PT must pop the groomed frame");
        assert_eq!(pt_hi, fa_hi, "aggressor-high PT must pop the groomed frame");
    }

    // Burn through every hole candidate, then punch the hole where the
    // strategy's aim actually points. With aiming error e ≠ 0 the first
    // frame of row target+e already holds an aggressor PT (e = ±1) or is
    // burned, so the hole goes to the row's second frame — still in row
    // target+e, which is all the attack cares about.
    let error = strategy.row_error(rng);
    burn_to(
        space,
        &mut port,
        &mut burned,
        Frame(frame_of(target_row + 2).0 + 1),
    );
    let hole = if error == 0 {
        frame_of(target_row)
    } else {
        Frame(frame_of((target_row as i64 + error) as u32).0 + 1)
    };
    space.free_frame(hole);

    // The OS allocates the victim PT page on the first victim mapping: the
    // allocator's LIFO free list hands back the groomed hole. One present
    // PTE per 64-byte line fills the page with MAC-protected lines.
    let victim_vas: Vec<VirtAddr> = (0..victim_pages)
        .map(|i| VirtAddr::new(victim_base + (i as u64) * 8 * 4096))
        .collect();
    for (va, frame) in victim_vas.iter().zip(&victim_frames) {
        space
            .map(&mut port, *va, *frame, PteFlags::user_data())
            .expect("victim map");
    }
    let victim_pt = *space.table_frames().last().unwrap();
    if let Some((pool_first, pool_limit)) = space.table_pool() {
        assert!(
            (pool_first..pool_limit).contains(&victim_pt.0),
            "isolated victim PT must come from the pool"
        );
    } else {
        assert_eq!(victim_pt, hole, "victim PT must pop the groomed hole");
    }

    Placement {
        bank,
        target_row,
        actual_row: geometry.row_of(victim_pt.base()),
        row_error: error,
        victim_pt,
        aggressor_rows: [
            RowId {
                bank,
                row: target_row - 1,
            },
            RowId {
                bank,
                row: target_row + 1,
            },
        ],
        aggressor_leaf_lines: [pt_lo.base(), pt_hi.base()],
        aggressor_vas: [va_lo, va_hi],
        victim_vas,
        victim_frames,
        benign_va,
        frames_burned: burned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram::RowhammerConfig;

    fn placed(strategy: &dyn Allocator, seed: u64) -> (Victim, Placement) {
        let mut v = Victim::build(RowhammerConfig::immune(), true);
        let mut rng = SplitMix64::new(seed);
        let p = massage(&mut v, strategy, 3, 17, 64, &mut rng);
        (v, p)
    }

    #[test]
    fn pfn_aware_lands_exactly_between_aggressors() {
        let (v, p) = placed(&PfnAware, 1);
        assert_eq!(p.row_error, 0);
        assert_eq!(
            p.actual_row,
            RowId {
                bank: 3,
                row: p.target_row
            }
        );
        assert_eq!(p.aggressor_rows[0].row + 2, p.aggressor_rows[1].row);
        // Aggressor PTs really are one row either side of the victim PT.
        let g = v.sys.controller.device().geometry();
        for (line, row) in p.aggressor_leaf_lines.iter().zip(p.aggressor_rows) {
            assert_eq!(g.row_of(*line), row);
        }
    }

    #[test]
    fn victim_mappings_translate_through_the_groomed_pt() {
        let (mut v, p) = placed(&PfnAware, 2);
        for (va, frame) in p.victim_vas.iter().zip(&p.victim_frames) {
            assert!(v.sys.load(*va).is_ok());
            assert_eq!(v.sys.tlb().peek_frame(va.vpn()), Some(*frame));
        }
        assert!(v.sys.load(p.benign_va).is_ok());
    }

    #[test]
    fn error_models_stay_within_their_advertised_radius() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..500 {
            assert_eq!(PfnAware.row_error(&mut rng), 0);
            assert!(HugepageSpray.row_error(&mut rng).abs() <= 1);
            assert!(ThpCollapse.row_error(&mut rng).abs() <= 2);
            assert!(BankConflict.row_error(&mut rng).abs() <= 1);
        }
    }

    #[test]
    fn catt_isolation_defeats_the_grooming() {
        // Same playbook, CATT-partitioned victim: every PT page must land
        // in the pool behind the guard band, never in the groomed rows.
        let mut v = Victim::build_isolated(RowhammerConfig::immune(), false);
        let mut rng = SplitMix64::new(5);
        let p = massage(&mut v, &PfnAware, 3, 17, 64, &mut rng);
        let (pool_first, pool_limit) = v.space.table_pool().unwrap();
        assert!((pool_first..pool_limit).contains(&p.victim_pt.0));
        let g = v.sys.controller.device().geometry();
        for line in p.aggressor_leaf_lines {
            let pt_row = g.row_of(line);
            let dist = i64::from(pt_row.row) - i64::from(p.target_row);
            assert!(
                pt_row.bank != p.bank || dist.abs() > 2,
                "aggressor PT within blast radius: {pt_row:?} vs target {}",
                p.target_row
            );
        }
        // The victim still translates through its (pool-resident) PT.
        for va in &p.victim_vas {
            assert!(v.sys.load(*va).is_ok());
        }
    }

    #[test]
    fn imperfect_aim_still_lands_in_the_predicted_row() {
        // Whatever error the strategy draws, the hole (and therefore the
        // victim PT) must land in row target + error of the target bank.
        for seed in 0..8 {
            let (_, p) = placed(&ThpCollapse, 100 + seed);
            assert_eq!(p.actual_row.bank, p.bank);
            assert_eq!(
                i64::from(p.actual_row.row),
                i64::from(p.target_row) + p.row_error
            );
        }
    }
}
