//! The op-stream abstraction the simulated cores execute from.
//!
//! A [`Machine`](crate::Machine) is generic over where its instruction
//! stream comes from: live generation ([`TraceGenerator`]) or replay of a
//! recorded binary trace ([`trace::TraceReader`]). Both produce the same
//! [`Op`]s, so a replayed run is bit-identical to the live run it was
//! recorded from.

use trace::TraceReader;
use workloads::tracegen::{Op, TraceGenerator};

/// A source of simulated instructions.
///
/// Sources are *pull*-driven and must yield an op for every call: the
/// runner executes a fixed instruction budget, so a source that can run
/// dry (a trace) must hold at least that many ops — running out mid-run is
/// a caller error and panics rather than silently shortening the run.
pub trait OpSource {
    /// Produces the next instruction.
    fn next_op(&mut self) -> Op;
}

impl OpSource for TraceGenerator {
    fn next_op(&mut self) -> Op {
        TraceGenerator::next_op(self)
    }
}

/// Replay: ops come off the background decode thread two chunks ahead of
/// the core consuming them.
///
/// # Panics
///
/// Panics if the trace is exhausted or fails to decode mid-run (the run
/// budget must not exceed the trace's `op_count`, and a corrupt trace
/// should be rejected up front by inspecting it, not half-simulated).
impl OpSource for TraceReader {
    fn next_op(&mut self) -> Op {
        match self.try_next() {
            Ok(Some(op)) => op,
            Ok(None) => panic!("trace exhausted mid-run (op budget exceeds recorded op count)"),
            Err(e) => panic!("trace replay failed: {e}"),
        }
    }
}
