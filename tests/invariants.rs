//! Property-based invariants spanning the crates.
//!
//! Formerly proptest-driven; now a deterministic randomized sweep over the
//! in-tree [`rng::SplitMix64`] so the workspace builds with no network
//! access. Case counts match the old proptest configuration.

use std::collections::BTreeSet;

use pagetable::addr::{PhysAddr, VirtAddr};
use pagetable::memory::VecMemory;
use pagetable::space::AddressSpace;
use pagetable::x86_64::PteFlags;
use ptguard::engine::ReadVerdict;
use ptguard::line::Line;
use ptguard::{pattern, PtGuardConfig, PtGuardEngine};
use qarma::{Qarma128, Qarma64, Sbox};
use rng::SplitMix64;

const CASES: usize = 64;

/// A line that satisfies the OS invariant (PTE-shaped).
fn pte_shaped_line(rng: &mut SplitMix64) -> Line {
    let mut words = [0u64; 8];
    for w in words.iter_mut() {
        let present = rng.gen_bool(0.5);
        if present {
            let pfn = rng.gen_range_u64(0, 1 << 28);
            let flagbits = rng.gen_range_u64(0, 16);
            *w = (pfn << 12) | 0x07 | (flagbits << 3) & 0xf8;
        }
    }
    Line::from_words(words)
}

/// Arbitrary line content (usually not pattern-matching).
fn any_line(rng: &mut SplitMix64) -> Line {
    let mut words = [0u64; 8];
    for w in words.iter_mut() {
        *w = rng.next_u64();
    }
    Line::from_words(words)
}

#[test]
fn qarma64_is_a_permutation() {
    let mut rng = SplitMix64::new(0x1a01);
    for _ in 0..CASES {
        let key = [rng.next_u64(), rng.next_u64()];
        let pt = rng.next_u64();
        let tw = rng.next_u64();
        for sbox in [Sbox::Sigma0, Sbox::Sigma1, Sbox::Sigma2] {
            let c = Qarma64::new(key, 5, sbox);
            assert_eq!(c.decrypt(c.encrypt(pt, tw), tw), pt);
        }
    }
}

#[test]
fn qarma128_is_a_permutation() {
    let mut rng = SplitMix64::new(0x1a02);
    let u128_of = |r: &mut SplitMix64| (u128::from(r.next_u64()) << 64) | u128::from(r.next_u64());
    for _ in 0..CASES {
        let key = [u128_of(&mut rng), u128_of(&mut rng)];
        let pt = u128_of(&mut rng);
        let tw = u128_of(&mut rng);
        let c = Qarma128::new(key, 9, Sbox::Sigma1);
        assert_eq!(c.decrypt(c.encrypt(pt, tw), tw), pt);
    }
}

#[test]
fn protected_roundtrip_is_identity() {
    // Any OS-invariant-respecting line survives write→read untouched, in
    // both engine variants.
    let mut rng = SplitMix64::new(0x1a03);
    for _ in 0..CASES {
        let line = pte_shaped_line(&mut rng);
        let addr = PhysAddr::new(rng.gen_range_u64(0, 1 << 20) * 64);
        for cfg in [PtGuardConfig::default(), PtGuardConfig::optimized()] {
            let mut e = PtGuardEngine::new(cfg);
            let w = e.process_write(line, addr);
            assert!(w.protected);
            let r = e.process_read(w.line, addr, true);
            assert_eq!(r.verdict, ReadVerdict::Verified);
            assert_eq!(r.line, line);
        }
    }
}

#[test]
fn data_roundtrip_preserves_content() {
    // Regular data — protected or not, colliding or not — always comes
    // back bit-identical on the data-read path.
    let mut rng = SplitMix64::new(0x1a04);
    for _ in 0..CASES {
        let line = any_line(&mut rng);
        let addr = PhysAddr::new(rng.gen_range_u64(0, 1 << 20) * 64);
        let mut e = PtGuardEngine::new(PtGuardConfig::default());
        let w = e.process_write(line, addr);
        let r = e.process_read(w.line, addr, false);
        assert!(r.verdict.is_ok());
        if w.protected {
            // Pattern-matched: MAC embedded then stripped back out.
            assert_eq!(r.line, line);
        } else {
            assert_eq!(r.line, w.line);
            assert_eq!(w.line, line);
        }
    }
}

#[test]
fn tampered_walks_never_verify_silently() {
    // Whatever bits flip, a PTE walk either (a) accepts a payload equal to
    // the original protected content, or (b) raises CheckFailed. Silent
    // acceptance of modified protected content is forbidden.
    let mut rng = SplitMix64::new(0x1a05);
    for _ in 0..CASES {
        let line = pte_shaped_line(&mut rng);
        let addr = PhysAddr::new(rng.gen_range_u64(0, 1 << 20) * 64);
        let mut flips = BTreeSet::new();
        for _ in 0..rng.gen_range_usize(1, 6) {
            flips.insert(rng.gen_range_usize(0, 512));
        }
        let mut e = PtGuardEngine::new(PtGuardConfig::default());
        let protected_mask = e.mac_unit().protected_mask();
        let w = e.process_write(line, addr);
        let mut faulty = w.line;
        for f in flips {
            faulty.flip_bit(f);
        }
        let r = e.process_read(faulty, addr, true);
        match r.verdict {
            ReadVerdict::Verified | ReadVerdict::Corrected { .. } => {
                assert_eq!(
                    r.line.masked(protected_mask),
                    line.masked(protected_mask),
                    "accepted payload must match the written protected content"
                );
            }
            ReadVerdict::CheckFailed => {}
            ReadVerdict::Forwarded => panic!("PTE walks always verify"),
        }
    }
}

#[test]
fn embed_strip_is_inverse_on_pattern_lines() {
    let mut rng = SplitMix64::new(0x1a06);
    for _ in 0..CASES {
        let line = pte_shaped_line(&mut rng);
        let mac =
            ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) & ((1 << 96) - 1);
        assert!(pattern::matches_base_pattern(&line));
        let embedded = pattern::embed_mac(&line, mac);
        assert_eq!(pattern::extract_mac(&embedded), mac);
        assert_eq!(pattern::strip_mac(&embedded), line);
    }
}

#[test]
fn mapping_translate_agrees_with_direct_math() {
    // AddressSpace::translate must agree with frame arithmetic for every
    // mapping it created.
    let mut rng = SplitMix64::new(0x1a07);
    for _ in 0..24 {
        let mut vpns = BTreeSet::new();
        for _ in 0..rng.gen_range_usize(1, 24) {
            vpns.insert(rng.gen_range_u64(1, 1 << 24));
        }
        let mut mem = VecMemory::new(32 << 20);
        let mut space = AddressSpace::new(&mut mem, 32).unwrap();
        let mut placed = Vec::new();
        for vpn in vpns {
            let va = VirtAddr::new(vpn << 12);
            let frame = space.map_new(&mut mem, va, PteFlags::user_data()).unwrap();
            placed.push((va, frame));
        }
        for (va, frame) in placed {
            let pa = space
                .translate(&mem, VirtAddr::new(va.as_u64() + 0x123))
                .unwrap();
            assert_eq!(pa, PhysAddr::from_frame(frame, 0x123));
        }
        assert_eq!(space.verify_os_invariant(&mem), 0);
    }
}
