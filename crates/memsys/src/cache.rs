//! A set-associative, write-back, write-allocate data cache.
//!
//! Lines carry their data because PT-Guard's transparency contract is about
//! *content*: lines live MAC-stripped inside the hierarchy and MAC-embedded
//! in DRAM. Eviction of a dirty line therefore re-enters the PT-Guard write
//! path at the memory controller.

use pagetable::addr::PhysAddr;
use ptguard::line::Line;

use crate::config::CacheConfig;

/// One cache way.
#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
    data: Line,
}

impl Way {
    const EMPTY: Way = Way {
        tag: 0,
        valid: false,
        dirty: false,
        lru: 0,
        data: Line::ZERO,
    };
}

/// Hit/miss statistics.
///
/// Accounting contract: only [`Cache::lookup`] records `hits`/`misses` —
/// those two counters measure *demand* traffic exclusively. [`Cache::fill`]
/// and [`Cache::update`] are maintenance operations (refills, writeback
/// absorption) and never touch the hit/miss counters; `fill` instead counts
/// in `fills`. This keeps [`CacheStats::miss_ratio`] a pure demand-side
/// metric no matter how many refills land on stale copies.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Demand lookups that hit.
    pub hits: u64,
    /// Demand lookups that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Lines installed or refreshed via [`Cache::fill`] (maintenance
    /// traffic; disjoint from `hits`/`misses`).
    pub fills: u64,
}

impl CacheStats {
    /// Total demand lookups.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Demand miss ratio in [0, 1].
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// A set-associative cache holding 64-byte lines with data.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    storage: Vec<Way>,
    clock: u64,
    stats: CacheStats,
    /// Access latency in CPU cycles (exposed for the hierarchy).
    pub latency_cycles: u64,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry: zero ways, a capacity below one
    /// 64-byte line, or a non-power-of-two set count (see
    /// [`CacheConfig::sets`]). `index()` relies on `sets` being a power of
    /// two for its mask/shift arithmetic, so bad geometry must be rejected
    /// here rather than silently mis-indexing later.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Self {
            sets,
            ways: cfg.ways,
            storage: vec![Way::EMPTY; sets * cfg.ways],
            clock: 0,
            stats: CacheStats::default(),
            latency_cycles: cfg.latency_cycles,
        }
    }

    fn index(&self, addr: PhysAddr) -> (usize, u64) {
        let line = addr.as_u64() >> 6;
        (
            (line as usize) & (self.sets - 1),
            line >> self.sets.trailing_zeros(),
        )
    }

    /// Looks up `addr`; on a hit returns the line data and updates LRU.
    ///
    /// Lookup never marks a line dirty: a line only becomes dirty when its
    /// data actually changes, via [`Cache::update`] or [`Cache::fill`]. A
    /// store that hits must therefore follow up with `update(addr, line,
    /// true)` once the new data exists. (Marking dirty at lookup time wrote
    /// unmodified lines back on fault/early-exit paths where the store
    /// never completed, inflating `writebacks` and DRAM traffic.)
    pub fn lookup(&mut self, addr: PhysAddr) -> Option<Line> {
        self.clock += 1;
        let (set, tag) = self.index(addr);
        let base = set * self.ways;
        for w in &mut self.storage[base..base + self.ways] {
            if w.valid && w.tag == tag {
                w.lru = self.clock;
                self.stats.hits += 1;
                return Some(w.data);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Peeks without touching LRU or statistics.
    #[must_use]
    pub fn peek(&self, addr: PhysAddr) -> Option<Line> {
        let (set, tag) = self.index(addr);
        let base = set * self.ways;
        self.storage[base..base + self.ways]
            .iter()
            .find(|w| w.valid && w.tag == tag)
            .map(|w| w.data)
    }

    /// Installs `data` for `addr`, evicting the LRU way if needed.
    /// Returns the evicted dirty line `(addr, data)` if one was displaced.
    ///
    /// A fill is maintenance traffic, not a demand access: it advances the
    /// LRU clock and counts in [`CacheStats::fills`] on both the
    /// refill-over-stale path and the install path, but never records a hit
    /// or a miss (those belong to [`Cache::lookup`] alone — see
    /// [`CacheStats`]).
    pub fn fill(&mut self, addr: PhysAddr, data: Line, dirty: bool) -> Option<(PhysAddr, Line)> {
        self.clock += 1;
        self.stats.fills += 1;
        let (set, tag) = self.index(addr);
        let base = set * self.ways;
        // Hit-update path (e.g. refill over a stale copy).
        for w in &mut self.storage[base..base + self.ways] {
            if w.valid && w.tag == tag {
                w.data = data;
                w.dirty |= dirty;
                w.lru = self.clock;
                return None;
            }
        }
        // Choose a victim: first invalid, else LRU.
        let victim = {
            let ways = &self.storage[base..base + self.ways];
            match ways.iter().position(|w| !w.valid) {
                Some(i) => i,
                None => ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.lru)
                    .map(|(i, _)| i)
                    .expect("non-empty set"),
            }
        };
        let w = &mut self.storage[base + victim];
        let evicted = if w.valid && w.dirty {
            self.stats.writebacks += 1;
            let line_no = (w.tag << self.sets.trailing_zeros()) | set as u64;
            Some((PhysAddr::new(line_no << 6), w.data))
        } else {
            None
        };
        *w = Way {
            tag,
            valid: true,
            dirty,
            lru: self.clock,
            data,
        };
        evicted
    }

    /// Updates the data of a resident line (no-op if absent). Marks dirty
    /// when `dirty` is set.
    pub fn update(&mut self, addr: PhysAddr, data: Line, dirty: bool) {
        let (set, tag) = self.index(addr);
        let base = set * self.ways;
        for w in &mut self.storage[base..base + self.ways] {
            if w.valid && w.tag == tag {
                w.data = data;
                w.dirty |= dirty;
                return;
            }
        }
    }

    /// Invalidates a line without writeback, returning its data if dirty.
    pub fn invalidate(&mut self, addr: PhysAddr) -> Option<(PhysAddr, Line)> {
        let (set, tag) = self.index(addr);
        let base = set * self.ways;
        for w in &mut self.storage[base..base + self.ways] {
            if w.valid && w.tag == tag {
                w.valid = false;
                if w.dirty {
                    let line_no = (w.tag << self.sets.trailing_zeros()) | set as u64;
                    return Some((PhysAddr::new(line_no << 6), w.data));
                }
                return None;
            }
        }
        None
    }

    /// Drains every dirty line (e.g. at a flush point), returning them.
    pub fn drain_dirty(&mut self) -> Vec<(PhysAddr, Line)> {
        let mut out = Vec::new();
        let shift = self.sets.trailing_zeros();
        for set in 0..self.sets {
            for way in 0..self.ways {
                let w = &mut self.storage[set * self.ways + way];
                if w.valid && w.dirty {
                    let line_no = (w.tag << shift) | set as u64;
                    out.push((PhysAddr::new(line_no << 6), w.data));
                    w.dirty = false;
                }
            }
        }
        self.stats.writebacks += out.len() as u64;
        out
    }

    /// Statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets × 2 ways of 64 B lines = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            latency_cycles: 1,
        })
    }

    fn line(v: u64) -> Line {
        Line::from_words([v, 0, 0, 0, 0, 0, 0, 0])
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        let a = PhysAddr::new(0x1000);
        assert!(c.lookup(a).is_none());
        assert!(c.fill(a, line(7), false).is_none());
        assert_eq!(c.lookup(a), Some(line(7)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().fills, 1);
    }

    #[test]
    fn lru_eviction_and_dirty_writeback() {
        let mut c = small();
        // Three lines in the same set (stride = sets*64 = 256).
        let a = PhysAddr::new(0x0);
        let b = PhysAddr::new(0x100);
        let d = PhysAddr::new(0x200);
        c.fill(a, line(1), true); // dirty
        c.fill(b, line(2), false);
        c.lookup(a); // a is now MRU
        let evicted = c.fill(d, line(3), false);
        assert!(evicted.is_none(), "b was clean LRU: silent eviction");
        assert!(c.peek(b).is_none());
        assert!(c.peek(a).is_some());
        // The next fill evicts dirty `a` (LRU) and must write it back.
        let wb = c.fill(b, line(4), false);
        let (wa, wd) = wb.expect("dirty writeback");
        assert_eq!(wa, a);
        assert_eq!(wd, line(1));
    }

    #[test]
    fn update_marks_dirty_and_changes_data() {
        let mut c = small();
        let a = PhysAddr::new(0x40);
        c.fill(a, line(1), false);
        c.update(a, line(9), true);
        assert_eq!(c.lookup(a), Some(line(9)));
        let drained = c.drain_dirty();
        assert_eq!(drained, vec![(a, line(9))]);
        assert!(c.drain_dirty().is_empty(), "drain clears dirty bits");
    }

    #[test]
    fn invalidate_returns_dirty_data() {
        let mut c = small();
        let a = PhysAddr::new(0x80);
        c.fill(a, line(1), true);
        assert_eq!(c.invalidate(a), Some((a, line(1))));
        assert!(c.peek(a).is_none());
        assert_eq!(c.invalidate(a), None);
    }

    #[test]
    fn sub_line_addresses_share_a_line() {
        let mut c = small();
        c.fill(PhysAddr::new(0x1000), line(5), false);
        assert_eq!(c.lookup(PhysAddr::new(0x103f)), Some(line(5)));
    }

    #[test]
    fn lookup_never_dirties_a_clean_line() {
        // Regression: `lookup(addr, write=true)` used to pre-mark the line
        // dirty before any data changed, so an aborted store still caused a
        // writeback of unmodified data. With dirty confined to fill/update,
        // a looked-up-but-never-updated line stays clean.
        let mut c = small();
        let a = PhysAddr::new(0x40);
        c.fill(a, line(1), false);
        assert_eq!(c.lookup(a), Some(line(1)));
        assert!(c.drain_dirty().is_empty(), "lookup must not set dirty");
        assert_eq!(c.stats().writebacks, 0);
        // The store path (lookup + update) does dirty the line.
        c.lookup(a);
        c.update(a, line(2), true);
        assert_eq!(c.drain_dirty(), vec![(a, line(2))]);
    }

    #[test]
    fn fill_accounting_is_disjoint_from_demand_stats() {
        // Refill-over-stale must not skew the demand miss ratio: fills
        // count in `fills` only, never in hits/misses.
        let mut c = small();
        let a = PhysAddr::new(0x1000);
        assert!(c.lookup(a).is_none()); // 1 demand miss
        c.fill(a, line(1), false); // install
        c.fill(a, line(2), false); // refill over stale copy
        c.fill(a, line(3), false); // and again
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().fills, 3);
        assert!((c.stats().miss_ratio() - 1.0).abs() < f64::EPSILON);
        // LRU clock still advanced on each fill: a later same-set fill
        // sees `a` as MRU.
        assert_eq!(c.lookup(a), Some(line(3)));
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_rejected() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 0,
            latency_cycles: 1,
        });
    }

    #[test]
    #[should_panic(expected = "at least one 64-byte line")]
    fn zero_capacity_rejected() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 0,
            ways: 1,
            latency_cycles: 1,
        });
    }
}
