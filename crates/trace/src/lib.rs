//! # Binary memory-trace record/replay
//!
//! A compact, self-describing on-disk format for the instruction streams
//! the simulator consumes ([`workloads::tracegen::Op`]), plus a streaming
//! writer and a prefetching reader. Recording a workload once and replaying
//! it removes the generator from the measured loop and pins the exact op
//! stream an experiment saw — replayed runs are bit-identical to live ones.
//!
//! ## Format (version 1)
//!
//! ```text
//! header:  magic "PTGT" | version u16 | profile len u8 + bytes | seed u64 | op count u64
//! chunk*:  payload len u32 | op count u32 | payload | crc32(payload) u32
//! trailer: sentinel u32 (0xffff_ffff) | total op count u64
//! ```
//!
//! All integers are little-endian. Each chunk payload is a sequence of
//! records: a tag byte (`0` = compute run, `1` = load, `2` = store)
//! followed by a varint — the run length for computes, or the
//! zigzag-encoded delta from the previous memory address for loads and
//! stores. The delta state resets at every chunk boundary, so chunks are
//! self-contained and a corrupt chunk is detected by its own checksum
//! without poisoning its neighbours. A stream that ends without the
//! trailer is reported as [`TraceError::Truncated`]; a payload whose CRC
//! disagrees is [`TraceError::ChecksumMismatch`].
//!
//! * [`TraceWriter`] — push ops (or drain any iterator) into any
//!   [`std::io::Write`] sink, buffering one chunk at a time.
//! * [`TraceReader`] — decodes chunks on a background thread with a
//!   two-chunk prefetch window, so replay overlaps disk+decode with
//!   simulation.
//! * [`TraceStats`] — one-pass op mix / footprint / hot-cold summary.

#![warn(missing_docs)]

mod error;
pub mod format;
pub mod reader;
pub mod stats;
pub mod writer;

pub use error::TraceError;
pub use reader::{TraceHeader, TraceReader};
pub use stats::TraceStats;
pub use writer::{record_to_file, TraceWriter};
