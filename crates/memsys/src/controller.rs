//! The memory controller: DRAM scheduling plus the PT-Guard engine hook
//! (Figure 5 of the paper).
//!
//! Two datapaths share one implementation:
//!
//! * the **blocking** path ([`MemoryController::read_line`]) services one
//!   request to completion, exactly as before the pipeline refactor;
//! * the **banked-queue** path ([`MemoryController::enqueue_read`] /
//!   [`MemoryController::drain_reads`]) accepts a window of outstanding
//!   reads, schedules each bank's queue FR-FCFS against the device's
//!   per-bank busy-until timing, and verifies all ready PTE MACs through
//!   one [`ptguard::mac::PteMac::compute_batch`] call per drain.
//!
//! A drain of a single request is *bit-identical* to one `read_line` call:
//! the bank wait is exactly `0.0`, a batch of one computes the same MAC,
//! and both paths funnel through the same `finish_read` tail.

use std::collections::VecDeque;

use dram::DramDevice;
use pagetable::addr::PhysAddr;
use pagetable::memory::PhysMem;
use ptguard::engine::ReadVerdict;
use ptguard::line::Line;
use ptguard::PtGuardEngine;

use crate::config::clock;
use crate::fullmac::FullMemoryMac;

/// Number of buckets in [`ControllerStats::mac_batch_hist`]: batch sizes
/// 1, 2, 3-4, 5-8, 9-16, and >16.
pub const MAC_BATCH_BUCKETS: usize = 6;

/// FR-FCFS age cap: a queued request may be bypassed by younger row-hit
/// requests at most this many times before the scheduler picks it
/// unconditionally. Without the cap an adversarial row-hit stream (the
/// Blockhammer-style throttling pattern) starves a row-miss request for the
/// whole drain. The cap is larger than any pipeline window the drivers use
/// (`mlp ≤ 4`), so ordinary windows never hit it and pinned cycle totals
/// are unchanged.
pub const FR_FCFS_BYPASS_CAP: u32 = 4;

/// Controller statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ControllerStats {
    /// DRAM line reads served.
    pub reads: u64,
    /// DRAM line writes served.
    pub writes: u64,
    /// Reads tagged `is_pte` (page-table walks reaching DRAM).
    pub pte_reads: u64,
    /// Reads whose walk-time integrity check failed.
    pub check_failures: u64,
    /// Extra cycles added by MAC work on the read path.
    pub mac_cycles_added: u64,
    /// High-water mark of reads outstanding across all bank queues.
    pub queue_occupancy_hwm: u64,
    /// Histogram of MAC verification batch sizes per drain step
    /// (buckets: 1, 2, 3-4, 5-8, 9-16, >16). Drains whose every read takes
    /// a shortcut (CTB / identifier skip / MAC-zero) record nothing.
    pub mac_batch_hist: [u64; MAC_BATCH_BUCKETS],
}

impl ControllerStats {
    /// Accumulates another controller's stats into this one (counters sum,
    /// the occupancy high-water mark takes the max). The multi-channel
    /// system reports its total as the fold of every channel over this, so
    /// "sum of per-channel counters == system total" holds by construction
    /// and is pinned by a reconciliation test.
    pub fn absorb(&mut self, other: &ControllerStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.pte_reads += other.pte_reads;
        self.check_failures += other.check_failures;
        self.mac_cycles_added += other.mac_cycles_added;
        self.queue_occupancy_hwm = self.queue_occupancy_hwm.max(other.queue_occupancy_hwm);
        for (b, o) in self.mac_batch_hist.iter_mut().zip(&other.mac_batch_hist) {
            *b += o;
        }
    }
}

/// A read waiting in a bank queue.
#[derive(Debug, Clone, Copy)]
struct QueuedRead {
    id: u64,
    addr: PhysAddr,
    is_pte: bool,
    /// Times a younger row-hit request was scheduled past this one
    /// (FR-FCFS age; see [`FR_FCFS_BYPASS_CAP`]).
    bypassed: u32,
}

/// A queued read after its DRAM service, before MAC verification.
#[derive(Debug, Clone, Copy)]
struct ServicedRead {
    id: u64,
    addr: PhysAddr,
    is_pte: bool,
    dram_ps: u128,
    raw: Line,
}

/// Scratch buffers reused across [`MemoryController::drain_reads`] calls so
/// a steady-state drain performs no heap allocation (the MAC batch itself
/// runs on stack buffers for any realistic window — see
/// [`ptguard::mac::PteMac::compute_batch_into`]).
#[derive(Debug, Default)]
struct DrainScratch {
    serviced: Vec<ServicedRead>,
    macs: Vec<Option<u128>>,
    needing: Vec<usize>,
    items: Vec<(Line, PhysAddr)>,
    computed: Vec<u128>,
    /// One bank's queue, flattened for in-place FR-FCFS picking.
    bankq: Vec<QueuedRead>,
    /// Parallel to `bankq`: whether the slot has been scheduled.
    taken: Vec<bool>,
}

/// Result of a DRAM line read.
#[derive(Debug, Clone, Copy)]
pub struct DramRead {
    /// The line as forwarded to the cache hierarchy (MAC stripped when a
    /// protected line verified). Not meaningful when `verdict` is
    /// [`ReadVerdict::CheckFailed`].
    pub line: Line,
    /// Total read latency in CPU cycles (DRAM timing + MAC work).
    pub latency_cycles: u64,
    /// The portion of `latency_cycles` spent on MAC computation in the
    /// controller — it delays the requester but does *not* occupy the DRAM
    /// channel (multi-core models must not serialize on it).
    pub mac_cycles: u64,
    /// The PT-Guard verdict ([`ReadVerdict::Forwarded`] when the controller
    /// has no engine).
    pub verdict: ReadVerdict,
    /// DRAM service finish relative to this controller's drain epoch, in
    /// integer picoseconds (bank wait + service, plus any MAC-table fetch;
    /// excludes MAC computation cycles). The multi-channel system merges
    /// per-channel drains on `(dram_ps, channel, id)` — a pure integer key,
    /// identical across hosts.
    pub dram_ps: u128,
}

/// A DDR memory controller with an optional PT-Guard engine on its
/// read/write datapath.
#[derive(Debug)]
pub struct MemoryController {
    device: DramDevice,
    engine: Option<PtGuardEngine>,
    full_mac: Option<FullMemoryMac>,
    /// Core clock in integer kHz — the float GHz profile figure is rounded
    /// exactly once, at construction (see [`clock`]).
    core_khz: u64,
    stats: ControllerStats,
    /// Per-bank FIFO request queues for the pipelined read path.
    queues: Vec<VecDeque<QueuedRead>>,
    /// Banks with a non-empty queue, in arrival order; sorted at drain
    /// time so a drain visits only occupied banks in ascending bank
    /// order (identical to scanning all banks and skipping empties).
    active_banks: Vec<u32>,
    /// Parallel membership flags for `active_banks`, indexed by bank.
    bank_active: Vec<bool>,
    /// Reads currently queued across all banks.
    queued: usize,
    /// Monotonic request id; doubles as the FCFS age tiebreaker.
    next_req_id: u64,
    /// Reusable drain buffers (see [`DrainScratch`]).
    scratch: DrainScratch,
    /// Benchmark control: when set, drained reads are verified with one
    /// scalar cipher call per chunk instead of the batched SWAR kernel.
    /// MAC values — and therefore every simulated outcome — are identical;
    /// only host time differs. See [`Self::set_unbatched_mac`].
    unbatched_mac: bool,
}

impl MemoryController {
    /// Creates a controller over `device`; `engine` enables PT-Guard.
    #[must_use]
    pub fn new(device: DramDevice, engine: Option<PtGuardEngine>, core_ghz: f64) -> Self {
        let banks = device.geometry().banks as usize;
        Self {
            device,
            engine,
            full_mac: None,
            core_khz: clock::ghz_to_khz(core_ghz),
            stats: ControllerStats::default(),
            queues: vec![VecDeque::new(); banks],
            active_banks: Vec::new(),
            bank_active: vec![false; banks],
            queued: 0,
            next_req_id: 0,
            scratch: DrainScratch::default(),
            unbatched_mac: false,
        }
    }

    /// Creates a controller with SGX/Synergy-style *whole-memory* integrity
    /// instead of PT-Guard: a separate in-DRAM MAC table (12.5 % storage)
    /// consulted on every data read/write, with a 64-entry MAC cache — the
    /// conventional design PT-Guard's introduction argues against.
    #[must_use]
    pub fn with_full_memory_mac(device: DramDevice, core_ghz: f64) -> Self {
        let fm = FullMemoryMac::new(device.size());
        let banks = device.geometry().banks as usize;
        Self {
            device,
            engine: None,
            full_mac: Some(fm),
            core_khz: clock::ghz_to_khz(core_ghz),
            stats: ControllerStats::default(),
            queues: vec![VecDeque::new(); banks],
            active_banks: Vec::new(),
            bank_active: vec![false; banks],
            queued: 0,
            next_req_id: 0,
            scratch: DrainScratch::default(),
            unbatched_mac: false,
        }
    }

    /// The full-memory integrity engine, if mounted.
    #[must_use]
    pub fn full_mac(&self) -> Option<&FullMemoryMac> {
        self.full_mac.as_ref()
    }

    /// Serves a line read. `is_pte` is the request-bus walk tag.
    ///
    /// DRAM time is accumulated in integer picoseconds and converted to
    /// cycles once; MAC work is native to the cycle domain and added after
    /// that conversion. `stats.mac_cycles_added` is accumulated at a single
    /// point from the same `mac_cycles` the returned [`DramRead`] carries,
    /// so the stat equals the sum of per-read `mac_cycles` in every mode.
    pub fn read_line(&mut self, addr: PhysAddr, is_pte: bool) -> DramRead {
        self.device.tap_pte_hint(is_pte);
        let dram_ps = self.device.access_ps(addr, false);
        let raw = Line::from_bytes(&self.device.read_line(addr));
        self.finish_read(addr, is_pte, dram_ps, raw, None)
    }

    /// The shared tail of a line read: PT-Guard / full-memory-MAC
    /// verification and stat accounting for a line whose DRAM service
    /// (`dram_ps`) and raw contents (`raw`) are already known. Both the
    /// blocking path and the drain path end here; `precomputed_mac` carries
    /// the batched MAC when the drain already computed it.
    fn finish_read(
        &mut self,
        addr: PhysAddr,
        is_pte: bool,
        mut dram_ps: u128,
        raw: Line,
        precomputed_mac: Option<u128>,
    ) -> DramRead {
        self.stats.reads += 1;
        if is_pte {
            self.stats.pte_reads += 1;
        }
        let mut mac_cycles = 0u64;
        let (mut line, mut verdict) = match &mut self.engine {
            Some(engine) => {
                let out = engine.process_read_with(raw, addr, is_pte, precomputed_mac);
                mac_cycles += u64::from(out.added_latency_cycles);
                (out.line, out.verdict)
            }
            None => (raw, ReadVerdict::Forwarded),
        };
        // Whole-memory integrity: fetch + verify the separate MAC
        // (Sections I / VIII-D baseline).
        if let Some(fm) = &mut self.full_mac {
            if addr.line_addr().as_u64() < fm.table_base() {
                let slot = fm.slot_addr(addr);
                let hit = fm.cache_access(slot);
                if !hit {
                    self.device.tap_pte_hint(false);
                    dram_ps += self.device.access_ps(slot, false);
                }
                // MAC computation latency, same 10 cycles as PT-Guard's,
                // charged on hits and misses alike — the cache saves only
                // the table fetch, never the check itself.
                mac_cycles += 10;
                let stored = self.device.read_u64(slot);
                let computed = fm.line_mac(&raw, addr);
                let ok = if stored == 0 {
                    // First touch: initialize the table entry.
                    self.device.write_u64(slot, computed);
                    true
                } else {
                    stored == computed
                };
                fm.note_read(hit, ok);
                if !ok {
                    line = raw;
                    verdict = ReadVerdict::CheckFailed;
                }
            }
        }
        if verdict == ReadVerdict::CheckFailed {
            self.stats.check_failures += 1;
        }
        self.stats.mac_cycles_added += mac_cycles;
        DramRead {
            line,
            latency_cycles: clock::ps_to_cycles(dram_ps, self.core_khz) + mac_cycles,
            mac_cycles,
            verdict,
            dram_ps,
        }
    }

    /// Queues a line read on its bank's request queue and returns its
    /// request id. The read is serviced — and its result returned — by the
    /// next [`Self::drain_reads`] call.
    pub fn enqueue_read(&mut self, addr: PhysAddr, is_pte: bool) -> u64 {
        let id = self.next_req_id;
        self.next_req_id += 1;
        let bank = self.device.geometry().row_of(addr).bank as usize;
        self.queues[bank].push_back(QueuedRead {
            id,
            addr,
            is_pte,
            bypassed: 0,
        });
        if !self.bank_active[bank] {
            self.bank_active[bank] = true;
            self.active_banks.push(bank as u32);
        }
        self.queued += 1;
        self.stats.queue_occupancy_hwm = self.stats.queue_occupancy_hwm.max(self.queued as u64);
        id
    }

    /// Whether any read is waiting in a bank queue.
    #[must_use]
    pub fn has_queued_reads(&self) -> bool {
        self.queued > 0
    }

    /// Number of reads waiting across all bank queues.
    #[must_use]
    pub fn queued_reads(&self) -> usize {
        self.queued
    }

    /// Services every queued read and appends `(request id, result)` pairs
    /// to `out` in deterministic completion order. The caller's buffer (and
    /// the controller's internal scratch) keep their capacity across calls,
    /// so a steady-state drain allocates nothing.
    ///
    /// Scheduling: all banks drain concurrently from a common epoch `t0`
    /// (the device clock at drain entry, integer ps). Within a bank,
    /// requests are picked FR-FCFS — the oldest request hitting the
    /// currently open row first, else the oldest request — subject to the
    /// [`FR_FCFS_BYPASS_CAP`] age cap, and chain through the bank's
    /// busy-until time, so same-bank requests serialise while different
    /// banks overlap. Completion order is `(service finish in integer ps,
    /// request id)`: pure integer comparison, so it is identical across
    /// hosts and `--jobs` values.
    ///
    /// MAC verification is batched: every serviced read that will reach full
    /// verification (per [`PtGuardEngine::read_needs_mac`]) contributes its
    /// four chunk encryptions to one
    /// [`ptguard::mac::PteMac::compute_batch_into`] call, and the result is
    /// fed back through the normal per-read verify path.
    pub fn drain_reads(&mut self, out: &mut Vec<(u64, DramRead)>) {
        // Single-request fast path: with one read queued (the common event
        // round — a lone walk step or data miss arming the pump), FR-FCFS,
        // the completion sort and the batch plumbing all degenerate to
        // identity, so service the request directly. Timing, MAC values,
        // verdicts and stats are exactly the general path's: one candidate
        // is picked unconditionally, and a one-item MAC batch is the plain
        // per-line computation.
        if self.queued == 1 {
            let bank = self
                .active_banks
                .pop()
                .expect("one queued read implies one active bank") as usize;
            debug_assert!(self.active_banks.is_empty());
            self.bank_active[bank] = false;
            let q = self.queues[bank].pop_front().expect("queued read");
            self.queued = 0;
            let t0 = self.device.now_ps();
            self.device.tap_pte_hint(q.is_pte);
            let t = self.device.service_at(q.addr, false, t0);
            let raw = Line::from_bytes(&self.device.read_line(q.addr));
            let mac = match &self.engine {
                Some(engine) if engine.read_needs_mac(&raw, q.addr, q.is_pte) => {
                    self.stats.mac_batch_hist[0] += 1;
                    let unit = engine.mac_unit();
                    Some(if self.unbatched_mac {
                        unit.compute_unbatched(&raw, q.addr)
                    } else {
                        unit.compute(&raw, q.addr)
                    })
                }
                _ => None,
            };
            let read = self.finish_read(q.addr, q.is_pte, t.wait_ps + t.latency_ps, raw, mac);
            out.push((q.id, read));
            return;
        }
        let t0 = self.device.now_ps();
        let mut s = std::mem::take(&mut self.scratch);
        s.serviced.clear();
        // Visit only occupied banks, in ascending bank order — the same
        // order a full 0..banks scan would service them in, without
        // touching the (mostly empty) other queues.
        let mut active = std::mem::take(&mut self.active_banks);
        active.sort_unstable();
        for &bank in &active {
            let bank = bank as usize;
            self.bank_active[bank] = false;
            if self.queues[bank].is_empty() {
                continue;
            }
            // Flatten the bank queue into scratch and *mark* picks in a
            // parallel `taken` bitmap instead of extracting mid-queue (the
            // previous `VecDeque::remove(pick)` shifted every element
            // behind the pick — O(n) per pick, O(n²) per drain). Slots stay
            // in insertion order, every scan starts at the oldest live slot,
            // and ids are monotonic, so the first row match is the oldest
            // one and same-row requests keep exact FIFO order.
            s.bankq.clear();
            s.bankq.extend(self.queues[bank].drain(..));
            s.taken.clear();
            s.taken.resize(s.bankq.len(), false);
            let mut head = 0;
            let mut remaining = s.bankq.len();
            while remaining > 0 {
                while s.taken[head] {
                    head += 1;
                }
                // FR-FCFS with an age cap. Re-evaluated after every service
                // because each activation moves the open row. Once the
                // oldest live request has been bypassed
                // [`FR_FCFS_BYPASS_CAP`] times it is scheduled
                // unconditionally; the head is always the most-bypassed
                // live request (every bypass that aged a younger request
                // also aged the head), so capping the head caps the queue.
                let open = self.device.open_row(bank);
                let pick = if s.bankq[head].bypassed >= FR_FCFS_BYPASS_CAP {
                    head
                } else {
                    open.and_then(|row| {
                        (head..s.bankq.len()).find(|&i| {
                            !s.taken[i] && self.device.geometry().row_of(s.bankq[i].addr).row == row
                        })
                    })
                    .unwrap_or(head)
                };
                for i in head..pick {
                    if !s.taken[i] {
                        s.bankq[i].bypassed += 1;
                    }
                }
                s.taken[pick] = true;
                remaining -= 1;
                let q = s.bankq[pick];
                self.device.tap_pte_hint(q.is_pte);
                let t = self.device.service_at(q.addr, false, t0);
                let dram_ps = t.wait_ps + t.latency_ps;
                // The raw line must be read *immediately* after this
                // request's own service: the activation may have flipped
                // bits (Rowhammer), and the blocking path reads right after
                // its access — later requests' disturbance must not leak
                // backwards into this one.
                let raw = Line::from_bytes(&self.device.read_line(q.addr));
                s.serviced.push(ServicedRead {
                    id: q.id,
                    addr: q.addr,
                    is_pte: q.is_pte,
                    dram_ps,
                    raw,
                });
            }
        }
        active.clear();
        self.active_banks = active;
        self.queued = 0;
        if s.serviced.len() > 1 {
            s.serviced.sort_by_key(|r| (r.dram_ps, r.id));
        }

        // One MAC batch over every read that will reach full verification.
        s.macs.clear();
        s.macs.resize(s.serviced.len(), None);
        if let Some(engine) = &self.engine {
            s.needing.clear();
            s.items.clear();
            for (i, r) in s.serviced.iter().enumerate() {
                if engine.read_needs_mac(&r.raw, r.addr, r.is_pte) {
                    s.needing.push(i);
                    s.items.push((r.raw, r.addr));
                }
            }
            if !s.needing.is_empty() {
                s.computed.clear();
                if self.unbatched_mac {
                    // Unbatched-verification control: one scalar cipher call
                    // per chunk, same MAC values (see `set_unbatched_mac`).
                    let mac = engine.mac_unit();
                    s.computed
                        .extend(s.items.iter().map(|(l, a)| mac.compute_unbatched(l, *a)));
                } else {
                    engine
                        .mac_unit()
                        .compute_batch_into(&s.items, &mut s.computed);
                }
                for (&i, &mac) in s.needing.iter().zip(&s.computed) {
                    s.macs[i] = Some(mac);
                }
                let bucket = match s.needing.len() {
                    1 => 0,
                    2 => 1,
                    3..=4 => 2,
                    5..=8 => 3,
                    9..=16 => 4,
                    _ => 5,
                };
                self.stats.mac_batch_hist[bucket] += 1;
            }
        }

        out.reserve(s.serviced.len());
        for (r, mac) in s.serviced.iter().zip(&s.macs) {
            let read = self.finish_read(r.addr, r.is_pte, r.dram_ps, r.raw, *mac);
            out.push((r.id, read));
        }
        self.scratch = s;
    }

    /// Serves a line write (cache writeback or OS store drain).
    pub fn write_line(&mut self, addr: PhysAddr, line: Line) {
        self.stats.writes += 1;
        let stored = match &mut self.engine {
            Some(engine) => engine.process_write(line, addr).line,
            None => line,
        };
        self.device.tap_pte_hint(false);
        let _ = self.device.access_ps(addr, true);
        self.device.write_line(addr, &stored.to_bytes());
        // Whole-memory integrity: keep the MAC table in sync (off the
        // critical path, but it is real DRAM traffic).
        if let Some(fm) = &mut self.full_mac {
            if addr.line_addr().as_u64() < fm.table_base() {
                let slot = fm.slot_addr(addr);
                let hit = fm.cache_access(slot);
                fm.note_write(hit);
                let computed = fm.line_mac(&stored, addr);
                let _ = self.device.access_ps(slot, true);
                self.device.write_u64(slot, computed);
            }
        }
    }

    /// The DRAM device.
    #[must_use]
    pub fn device(&self) -> &DramDevice {
        &self.device
    }

    /// Mutable DRAM device access (fault injection, hammering).
    pub fn device_mut(&mut self) -> &mut DramDevice {
        &mut self.device
    }

    /// Switches drain-time MAC verification between the batched SWAR kernel
    /// (default) and the scalar per-chunk reference path
    /// ([`ptguard::mac::PteMac::compute_unbatched`]).
    ///
    /// The two paths produce bit-identical MACs, so simulated cycle counts,
    /// verdicts, and stats are unaffected — the knob exists so `bench
    /// memsys` can isolate the *host-time* cost of unbatched verification
    /// at an otherwise identical pipeline configuration. No-op for a
    /// controller without a PT-Guard engine.
    pub fn set_unbatched_mac(&mut self, on: bool) {
        self.unbatched_mac = on;
    }

    /// The PT-Guard engine, if mounted.
    #[must_use]
    pub fn engine(&self) -> Option<&PtGuardEngine> {
        self.engine.as_ref()
    }

    /// Statistics.
    #[must_use]
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram::RowhammerConfig;
    use ptguard::PtGuardConfig;

    fn pte_line() -> Line {
        Line::from_words([0x1234_5027, 0x1235_5027, 0, 0, 0, 0, 0, 0])
    }

    fn controller(guarded: bool) -> MemoryController {
        let device = DramDevice::ddr4_4gb(RowhammerConfig::immune());
        let engine = guarded.then(|| PtGuardEngine::new(PtGuardConfig::default()));
        MemoryController::new(device, engine, 3.0)
    }

    #[test]
    fn write_then_read_roundtrip_with_engine() {
        let mut mc = controller(true);
        let addr = PhysAddr::new(0x1_0000);
        mc.write_line(addr, pte_line());
        // In DRAM the line carries the MAC.
        let in_dram = Line::from_bytes(&mc.device().read_line(addr));
        assert_ne!(in_dram, pte_line());
        // Through the controller it comes back stripped and verified.
        let r = mc.read_line(addr, true);
        assert_eq!(r.verdict, ReadVerdict::Verified);
        assert_eq!(r.line, pte_line());
        assert!(r.latency_cycles > 10, "must include DRAM latency plus MAC");
    }

    #[test]
    fn unguarded_controller_is_transparent() {
        let mut mc = controller(false);
        let addr = PhysAddr::new(0x2_0000);
        mc.write_line(addr, pte_line());
        assert_eq!(Line::from_bytes(&mc.device().read_line(addr)), pte_line());
        let r = mc.read_line(addr, true);
        assert_eq!(r.verdict, ReadVerdict::Forwarded);
        assert_eq!(r.line, pte_line());
    }

    #[test]
    fn full_memory_mac_roundtrips_and_detects_tampering() {
        let device = DramDevice::ddr4_4gb(RowhammerConfig::immune());
        let mut mc = MemoryController::with_full_memory_mac(device, 3.0);
        let addr = PhysAddr::new(0x5_0000);
        let data = Line::from_words([u64::MAX, 1, 2, 3, 4, 5, 6, 7]);
        mc.write_line(addr, data);
        // Clean read verifies against the table and forwards the data.
        let r = mc.read_line(addr, false);
        assert!(r.verdict.is_ok());
        assert_eq!(r.line, data);
        // A Rowhammer flip in the *data* is caught...
        {
            let dev = mc.device_mut();
            let raw = dev.read_u64(addr);
            dev.write_u64(addr, raw ^ (1 << 7));
        }
        let r = mc.read_line(addr, false);
        assert_eq!(r.verdict, ReadVerdict::CheckFailed);
        // ...restore, then a flip in the *MAC table* is caught too.
        {
            let dev = mc.device_mut();
            let raw = dev.read_u64(addr);
            dev.write_u64(addr, raw ^ (1 << 7));
            let slot = mc.full_mac().unwrap().slot_addr(addr);
            let dev = mc.device_mut();
            let m = dev.read_u64(slot);
            dev.write_u64(slot, m ^ 1);
        }
        let r = mc.read_line(addr, false);
        assert_eq!(r.verdict, ReadVerdict::CheckFailed);
        assert_eq!(mc.full_mac().unwrap().stats().failures, 2);
    }

    #[test]
    fn full_memory_mac_charges_extra_latency_on_cache_misses() {
        let device = DramDevice::ddr4_4gb(RowhammerConfig::immune());
        let mut unprotected =
            MemoryController::new(DramDevice::ddr4_4gb(RowhammerConfig::immune()), None, 3.0);
        let mut mc = MemoryController::with_full_memory_mac(device, 3.0);
        // Scatter reads so the 64-entry MAC cache keeps missing (stride of
        // 512 data lines = one MAC line each).
        let (mut plain_total, mut mac_total) = (0u64, 0u64);
        for i in 0..128u64 {
            let a = PhysAddr::new(0x10_0000 + i * 64 * 512);
            plain_total += unprotected.read_line(a, false).latency_cycles;
            mac_total += mc.read_line(a, false).latency_cycles;
        }
        assert!(
            mac_total as f64 > 1.5 * plain_total as f64,
            "expected ~2x latency from MAC-table fetches: {mac_total} vs {plain_total}"
        );
    }

    #[test]
    fn mac_cycle_stat_reconciles_with_per_read_cycles() {
        // `stats.mac_cycles_added` must equal the sum of per-read
        // `mac_cycles` under PT-Guard and under full-memory MAC — including
        // failing reads, and with MAC-cache hits not double-counted.
        let mut guarded = controller(true);
        let mut total = 0u64;
        for i in 0..32u64 {
            let addr = PhysAddr::new(0x1_0000 + i * 64);
            guarded.write_line(addr, pte_line());
            total += guarded.read_line(addr, true).mac_cycles;
            total += guarded.read_line(addr, false).mac_cycles;
        }
        // A tampered read still charges its MAC work.
        let addr = PhysAddr::new(0x1_0000);
        let mut raw = Line::from_bytes(&guarded.device().read_line(addr));
        raw.set_word(0, raw.word(0) ^ (1 << 14));
        raw.set_word(1, raw.word(1) ^ (1 << 17));
        raw.set_word(3, raw.word(3) ^ (1 << 20));
        let bytes = raw.to_bytes();
        guarded.device_mut().write_line(addr, &bytes);
        let r = guarded.read_line(addr, true);
        assert_eq!(r.verdict, ReadVerdict::CheckFailed);
        total += r.mac_cycles;
        assert_eq!(guarded.stats().mac_cycles_added, total);

        let device = DramDevice::ddr4_4gb(RowhammerConfig::immune());
        let mut fm = MemoryController::with_full_memory_mac(device, 3.0);
        let mut total = 0u64;
        for i in 0..32u64 {
            let addr = PhysAddr::new(0x5_0000 + i * 64);
            fm.write_line(addr, pte_line());
            // Second read is a MAC-cache hit: still 10 cycles of MAC
            // computation, no second accumulation path.
            total += fm.read_line(addr, false).mac_cycles;
            total += fm.read_line(addr, false).mac_cycles;
        }
        // Tamper so the full-MAC check fails; the failing read must also
        // land in the stat exactly once.
        let addr = PhysAddr::new(0x5_0000);
        let word = fm.device().read_u64(addr);
        fm.device_mut().write_u64(addr, word ^ (1 << 7));
        let r = fm.read_line(addr, false);
        assert_eq!(r.verdict, ReadVerdict::CheckFailed);
        total += r.mac_cycles;
        assert_eq!(fm.stats().mac_cycles_added, total);
    }

    #[test]
    fn row_miss_is_scheduled_after_at_most_cap_bypasses() {
        // Regression test for FR-FCFS starvation: pre-fix, the scheduler
        // preferred row hits with no age bound, so a row-miss request behind
        // an adversarial row-hit stream was serviced dead last.
        let mut mc = controller(false);
        // Open row 0 of bank 0.
        mc.read_line(PhysAddr::new(0), false);
        let stride = 16u64 * 8192; // same-bank neighbour-row stride
        let miss = mc.enqueue_read(PhysAddr::new(stride), false);
        for i in 1..=8u64 {
            mc.enqueue_read(PhysAddr::new(i * 64), false);
        }
        let mut out = Vec::new();
        mc.drain_reads(&mut out);
        assert_eq!(out.len(), 9);
        let pos = out.iter().position(|(id, _)| *id == miss).unwrap();
        assert_eq!(
            pos, FR_FCFS_BYPASS_CAP as usize,
            "row miss must be scheduled after exactly the bypass cap, not starved to position {pos}"
        );
    }

    #[test]
    fn same_row_requests_retain_fifo_order() {
        // The swap-free pick scheme must keep exact FIFO (age) order among
        // requests to the same row, interleaved rows notwithstanding.
        let mut mc = controller(false);
        mc.read_line(PhysAddr::new(0), false); // open row 0 of bank 0
        let stride = 16u64 * 8192;
        let ids = [
            mc.enqueue_read(PhysAddr::new(64), false),          // row 0
            mc.enqueue_read(PhysAddr::new(stride), false),      // row 1
            mc.enqueue_read(PhysAddr::new(128), false),         // row 0
            mc.enqueue_read(PhysAddr::new(stride + 64), false), // row 1
            mc.enqueue_read(PhysAddr::new(192), false),         // row 0
            mc.enqueue_read(PhysAddr::new(256), false),         // row 0
        ];
        let mut out = Vec::new();
        mc.drain_reads(&mut out);
        assert_eq!(out.len(), ids.len());
        for row_ids in [
            [ids[0], ids[2], ids[4], ids[5]].as_slice(),
            [ids[1], ids[3]].as_slice(),
        ] {
            let pos: Vec<usize> = row_ids
                .iter()
                .map(|id| out.iter().position(|(o, _)| o == id).unwrap())
                .collect();
            assert!(
                pos.windows(2).all(|w| w[0] < w[1]),
                "same-row FIFO order violated: {pos:?}"
            );
        }
    }

    #[test]
    fn tampered_walk_read_raises_check_failure() {
        let mut mc = controller(true);
        let addr = PhysAddr::new(0x3_0000);
        mc.write_line(addr, pte_line());
        // Direct DRAM tamper (as Rowhammer would): flip a protected PFN bit
        // plus enough damage that correction cannot save it (3 scattered
        // PFN-in-use flips across entries with non-contiguous PFNs).
        let mut raw = Line::from_bytes(&mc.device().read_line(addr));
        raw.set_word(0, raw.word(0) ^ (1 << 14));
        raw.set_word(1, raw.word(1) ^ (1 << 17));
        raw.set_word(3, raw.word(3) ^ (1 << 20));
        let bytes = raw.to_bytes();
        mc.device_mut().write_line(addr, &bytes);
        let r = mc.read_line(addr, true);
        assert_eq!(r.verdict, ReadVerdict::CheckFailed);
        assert_eq!(mc.stats().check_failures, 1);
    }
}
