//! Rowhammer substrate benches: activation/disturbance throughput of the
//! device model and the attack patterns of Section II.

use dram::geometry::RowId;
use dram::{DramDevice, RowhammerConfig};
use ptguard_bench::harness::Bench;
use rowhammer::attacks::{double_sided, many_sided};
use rowhammer::{HammerSession, NoMitigation, Trr};

fn device() -> DramDevice {
    DramDevice::ddr4_4gb(RowhammerConfig {
        threshold: 1e12,
        ..RowhammerConfig::default()
    })
}

fn main() {
    let mut g = Bench::group("rowhammer");

    let mut d = device();
    g.bench("hammer_10k_activations", || {
        d.hammer(RowId { bank: 0, row: 500 }, 10_000)
    });

    let mut s = HammerSession::new(device(), NoMitigation);
    g.bench("double_sided_vs_none_2k", || {
        double_sided(&mut s, RowId { bank: 0, row: 500 }, 1000)
    });

    let mut s = HammerSession::new(device(), Trr::ddr4_typical(10_000));
    g.bench("many_sided_vs_trr_2k", || {
        many_sided(&mut s, RowId { bank: 0, row: 490 }, 12, 170)
    });
}
