//! The memory-controller-resident PT-Guard engine (Figure 5 of the paper).
//!
//! [`PtGuardEngine::process_write`] sits on the DRAM write path: it pattern-
//! matches, embeds the MAC (and identifier, when optimized), and performs
//! the write-time collision check. [`PtGuardEngine::process_read`] sits on
//! the DRAM read path: it consults the CTB, verifies and strips MACs,
//! raises `PTECheckFailed` for tampered page-table walks, and optionally
//! invokes the best-effort corrector.

use crate::config::PtGuardConfig;
use crate::correct::{CorrectionOutcome, CorrectionStep, Corrector};
use crate::ctb::CollisionTrackingBuffer;
use crate::line::Line;
use crate::mac::PteMac;
use crate::pattern;
use pagetable::addr::PhysAddr;
use pagetable::memory::PhysMem;
use pagetable::CACHELINE_SIZE;

/// Verdict of a DRAM read through the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadVerdict {
    /// Not a protected line (or tracked collision): forwarded unchanged.
    Forwarded,
    /// MAC verified and stripped.
    Verified,
    /// MAC mismatched but correction succeeded.
    Corrected {
        /// Guesses the corrector spent.
        guesses: u32,
        /// The strategy that succeeded.
        step: CorrectionStep,
    },
    /// Page-table-walk integrity failure: `PTECheckFailed` is raised, the
    /// line must not be installed in the caches.
    CheckFailed,
}

impl ReadVerdict {
    /// Whether the read may be consumed (i.e. not a failed integrity check).
    #[must_use]
    pub fn is_ok(&self) -> bool {
        !matches!(self, ReadVerdict::CheckFailed)
    }
}

/// Result of processing a DRAM write.
#[derive(Debug, Clone, Copy)]
pub struct WriteOutcome {
    /// The line as it should be stored in DRAM.
    pub line: Line,
    /// Whether a MAC was embedded (the line is now *protected*).
    pub protected: bool,
    /// Whether this write was detected as a colliding line and tracked.
    pub collision_tracked: bool,
    /// Whether the CTB overflowed: the system must re-key.
    pub rekey_required: bool,
    /// Whether a MAC computation was performed (energy/latency accounting;
    /// writes are off the critical path).
    pub mac_computed: bool,
}

/// Result of processing a DRAM read.
#[derive(Debug, Clone, Copy)]
pub struct ReadOutcome {
    /// The line to forward to the cache hierarchy. Only meaningful when
    /// `verdict.is_ok()`.
    pub line: Line,
    /// What happened.
    pub verdict: ReadVerdict,
    /// Whether a MAC computation was performed (this is what costs the
    /// paper's 10-cycle latency on the read path).
    pub mac_computed: bool,
    /// Read-path latency added by PT-Guard, in CPU cycles.
    pub added_latency_cycles: u32,
}

/// Counters the engine maintains.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// DRAM writes processed.
    pub writes: u64,
    /// Writes that matched the pattern and got a MAC.
    pub protected_writes: u64,
    /// DRAM reads processed.
    pub reads: u64,
    /// Reads tagged as page-table walks.
    pub pte_reads: u64,
    /// MAC computations performed (read path).
    pub read_mac_computations: u64,
    /// Reads that skipped MAC computation thanks to the identifier.
    pub identifier_skips: u64,
    /// Reads that used the precomputed MAC-zero comparison.
    pub mac_zero_hits: u64,
    /// Successful verifications (MAC stripped).
    pub verified: u64,
    /// Successful corrections.
    pub corrected: u64,
    /// Largest guess count any single correction spent (≤ the G_max guess
    /// budget of Section VI-D; campaign reports assert ≤ 372 for the
    /// 44-bit x86_64 format).
    pub max_correction_guesses: u32,
    /// Page-table-walk integrity failures raised.
    pub check_failures: u64,
    /// Colliding lines tracked.
    pub collisions: u64,
    /// Re-keying escalations signalled.
    pub rekeys: u64,
}

/// The PT-Guard memory-controller engine.
#[derive(Debug)]
pub struct PtGuardEngine {
    cfg: PtGuardConfig,
    mac: PteMac,
    ctb: CollisionTrackingBuffer,
    stats: EngineStats,
}

impl PtGuardEngine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`PtGuardConfig::validate`]).
    #[must_use]
    pub fn new(cfg: PtGuardConfig) -> Self {
        cfg.validate();
        Self {
            mac: PteMac::from_config(&cfg),
            ctb: CollisionTrackingBuffer::new(),
            stats: EngineStats::default(),
            cfg,
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &PtGuardConfig {
        &self.cfg
    }

    /// The MAC unit (e.g. for external correction experiments).
    #[must_use]
    pub fn mac_unit(&self) -> &PteMac {
        &self.mac
    }

    /// The collision tracking buffer.
    #[must_use]
    pub fn ctb(&self) -> &CollisionTrackingBuffer {
        &self.ctb
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Processes a DRAM write of `line` to `addr` (Section IV-B).
    pub fn process_write(&mut self, line: Line, addr: PhysAddr) -> WriteOutcome {
        self.stats.writes += 1;
        let fmt = self.cfg.format;
        let matches = if self.cfg.optimized {
            pattern::matches_extended_pattern_for(&line, fmt)
        } else {
            pattern::matches_pattern_for(&line, fmt)
        };

        if matches {
            self.stats.protected_writes += 1;
            // MAC-zero shortcut: zero lines get the precomputed common MAC.
            let (mac, computed) = if self.cfg.optimized && line.is_zero() {
                (self.mac.mac_zero(), false)
            } else {
                (self.mac.compute(&line, addr), true)
            };
            let mut out = pattern::embed_mac_for(&line, mac, fmt);
            if self.cfg.optimized {
                out = pattern::embed_identifier_for(&out, self.cfg.identifier, fmt);
            }
            // A previously colliding line overwritten by a protected line is
            // no longer colliding.
            self.ctb.remove(addr);
            return WriteOutcome {
                line: out,
                protected: true,
                collision_tracked: false,
                rekey_required: false,
                mac_computed: computed,
            };
        }

        // Non-matching line: write-time collision detection (Section IV-D).
        // In optimized mode a collision additionally requires the identifier
        // region to alias the identifier (otherwise reads never strip it).
        let id_aliases = !self.cfg.optimized
            || pattern::extract_identifier_for(&line, fmt) == self.cfg.identifier;
        let mut collision = false;
        let mut mac_computed = false;
        if id_aliases {
            mac_computed = true;
            let computed = self.mac.compute(&line, addr);
            collision = pattern::extract_mac_for(&line, fmt) == computed;
        }

        let mut rekey_required = false;
        if collision {
            self.stats.collisions += 1;
            if !self.ctb.insert(addr) {
                self.stats.rekeys += 1;
                rekey_required = true;
            }
        } else {
            self.ctb.remove(addr);
        }
        WriteOutcome {
            line,
            protected: false,
            collision_tracked: collision,
            rekey_required,
            mac_computed,
        }
    }

    /// Processes a DRAM read of `line` from `addr` (Sections IV-C to IV-E,
    /// V-A, V-B). `is_pte` is the request-bus bit tagging page-table walks.
    pub fn process_read(&mut self, line: Line, addr: PhysAddr, is_pte: bool) -> ReadOutcome {
        self.process_read_with(line, addr, is_pte, None)
    }

    /// Whether a read of `line` from `addr` will reach full MAC verification
    /// (as opposed to the CTB/identifier/MAC-zero shortcuts). Read-only
    /// mirror of the shortcut cascade at the top of [`Self::process_read`]:
    /// the controller's drain step uses it to decide which queued reads to
    /// include in a [`PteMac::compute_batch`] call. A stale answer can only
    /// cost batching efficiency, never correctness — [`Self::process_read_with`]
    /// falls back to a scalar MAC when no precomputed value is supplied.
    #[must_use]
    pub fn read_needs_mac(&self, line: &Line, addr: PhysAddr, is_pte: bool) -> bool {
        if self.ctb.contains(addr) {
            return false;
        }
        let fmt = self.cfg.format;
        if self.cfg.optimized {
            let id = pattern::extract_identifier_for(line, fmt);
            if id != self.cfg.identifier && !is_pte {
                return false;
            }
            if id == self.cfg.identifier
                && pattern::strip_mac_and_identifier_for(line, fmt).is_zero()
                && pattern::extract_mac_for(line, fmt) == self.mac.mac_zero()
            {
                return false;
            }
        }
        true
    }

    /// [`Self::process_read`], with an optionally precomputed MAC for the
    /// full-verification path (the controller batches MAC computations over
    /// a drain of ready reads and feeds each result back through here).
    /// `precomputed` must be `self.mac_unit().compute(&line, addr)` when
    /// supplied; `None` computes it inline, so callers may over-approximate
    /// which reads take a shortcut.
    pub fn process_read_with(
        &mut self,
        line: Line,
        addr: PhysAddr,
        is_pte: bool,
        precomputed: Option<u128>,
    ) -> ReadOutcome {
        self.stats.reads += 1;
        if is_pte {
            self.stats.pte_reads += 1;
        }

        // Tracked colliding lines are forwarded untouched, no MAC work.
        if self.ctb.contains(addr) {
            return ReadOutcome {
                line,
                verdict: ReadVerdict::Forwarded,
                mac_computed: false,
                added_latency_cycles: 0,
            };
        }

        let fmt = self.cfg.format;
        if self.cfg.optimized {
            let id = pattern::extract_identifier_for(&line, fmt);
            if id != self.cfg.identifier && !is_pte {
                // No identifier: not a protected line; skip the MAC entirely.
                self.stats.identifier_skips += 1;
                return ReadOutcome {
                    line,
                    verdict: ReadVerdict::Forwarded,
                    mac_computed: false,
                    added_latency_cycles: 0,
                };
            }
            // MAC-zero shortcut: an all-zero payload carrying the
            // precomputed MAC-zero verifies by comparison alone.
            if id == self.cfg.identifier
                && pattern::strip_mac_and_identifier_for(&line, fmt).is_zero()
                && pattern::extract_mac_for(&line, fmt) == self.mac.mac_zero()
            {
                self.stats.mac_zero_hits += 1;
                self.stats.verified += 1;
                return ReadOutcome {
                    line: pattern::strip_mac_and_identifier_for(&line, fmt),
                    verdict: ReadVerdict::Verified,
                    mac_computed: false,
                    added_latency_cycles: 0,
                };
            }
        }

        // Full MAC verification.
        self.stats.read_mac_computations += 1;
        let latency = self.cfg.mac_latency_cycles;
        let stored = pattern::extract_mac_for(&line, fmt);
        let computed = precomputed.unwrap_or_else(|| self.mac.compute(&line, addr));

        if computed == stored {
            self.stats.verified += 1;
            let stripped = if self.cfg.optimized {
                pattern::strip_mac_and_identifier_for(&line, fmt)
            } else {
                pattern::strip_mac_for(&line, fmt)
            };
            return ReadOutcome {
                line: stripped,
                verdict: ReadVerdict::Verified,
                mac_computed: true,
                added_latency_cycles: latency,
            };
        }

        if !is_pte {
            // Regular data without a matching MAC: forward unchanged — no
            // worse than consuming bit-flipped data on a baseline machine.
            return ReadOutcome {
                line,
                verdict: ReadVerdict::Forwarded,
                mac_computed: true,
                added_latency_cycles: latency,
            };
        }

        // Page-table walk with a MAC mismatch: correction, then exception.
        if self.cfg.correction {
            // MAC-zero interaction (a consequence of the Section V-B
            // optimization the paper leaves implicit): zero lines carry the
            // *address-independent* MAC-zero, so the general corrector's
            // address-bound comparisons can never match them. If the stored
            // MAC soft-matches MAC-zero, the line was written as all-zero —
            // forging this requires knowing the keyed MAC-zero value, so the
            // security argument is unchanged.
            if self.cfg.optimized
                && (stored ^ self.mac.mac_zero()).count_ones() <= self.cfg.soft_match_k
            {
                self.stats.corrected += 1;
                self.stats.max_correction_guesses = self.stats.max_correction_guesses.max(1);
                return ReadOutcome {
                    line: Line::ZERO,
                    verdict: ReadVerdict::Corrected {
                        guesses: 1,
                        step: CorrectionStep::ZeroReset,
                    },
                    mac_computed: true,
                    added_latency_cycles: latency.saturating_mul(2),
                };
            }
            let corrector =
                Corrector::new(&self.mac, self.cfg.soft_match_k, self.cfg.zero_reset_bits);
            if let CorrectionOutcome::Corrected(c) = corrector.correct(&line, addr) {
                self.stats.corrected += 1;
                self.stats.max_correction_guesses =
                    self.stats.max_correction_guesses.max(c.guesses);
                let stripped = if self.cfg.optimized {
                    pattern::strip_mac_and_identifier_for(&c.line, fmt)
                } else {
                    pattern::strip_mac_for(&c.line, fmt)
                };
                return ReadOutcome {
                    line: stripped,
                    verdict: ReadVerdict::Corrected {
                        guesses: c.guesses,
                        step: c.step,
                    },
                    mac_computed: true,
                    added_latency_cycles: latency.saturating_mul(1 + c.guesses),
                };
            }
        }

        self.stats.check_failures += 1;
        ReadOutcome {
            line,
            verdict: ReadVerdict::CheckFailed,
            mac_computed: true,
            added_latency_cycles: latency,
        }
    }

    /// Full-memory re-keying (Section VII-B): reads every line under the old
    /// key, strips verified MACs, swaps in `new_key`, re-embeds, and writes
    /// back. Clears the CTB. Returns the number of lines re-protected.
    pub fn rekey_memory<M: PhysMem + ?Sized>(&mut self, mem: &mut M, new_key: [u128; 2]) -> u64 {
        let size = mem.size();
        let mut staged: Vec<(PhysAddr, Line)> = Vec::new();
        let mut addr = 0u64;
        while addr < size {
            let pa = PhysAddr::new(addr);
            let line = Line::from_bytes(&mem.read_line(pa));
            let out = self.process_read(line, pa, false);
            if matches!(out.verdict, ReadVerdict::Verified) {
                staged.push((pa, out.line));
            }
            addr += CACHELINE_SIZE as u64;
        }
        self.cfg.key = new_key;
        self.mac = PteMac::from_config(&self.cfg);
        self.ctb.clear();
        let count = staged.len() as u64;
        for (pa, stripped) in staged {
            let w = self.process_write(stripped, pa);
            mem.write_line(pa, &w.line.to_bytes());
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pte_line() -> Line {
        Line::from_words([
            0x1234_5027,
            0x1235_5027,
            0,
            0x8000_0000_1111_1007,
            0,
            0,
            0,
            0,
        ])
    }

    fn data_line() -> Line {
        // Regular data: has bits inside the MAC region, never matches.
        Line::from_words([
            u64::MAX,
            0x1234_5678_9abc_def0,
            0xffff_ffff_0000_1111,
            7,
            8,
            9,
            10,
            11,
        ])
    }

    #[test]
    fn pte_write_read_roundtrip_base() {
        let mut e = PtGuardEngine::new(PtGuardConfig::default());
        let addr = PhysAddr::new(0x4000);
        let w = e.process_write(pte_line(), addr);
        assert!(w.protected);
        assert_ne!(w.line, pte_line(), "MAC must be embedded");
        let r = e.process_read(w.line, addr, true);
        assert_eq!(r.verdict, ReadVerdict::Verified);
        assert_eq!(r.line, pte_line(), "stripped line must match the original");
        assert_eq!(r.added_latency_cycles, 10);
    }

    #[test]
    fn pte_write_read_roundtrip_optimized() {
        let mut e = PtGuardEngine::new(PtGuardConfig::optimized());
        let addr = PhysAddr::new(0x8000);
        let w = e.process_write(pte_line(), addr);
        assert!(w.protected);
        assert_eq!(pattern::extract_identifier(&w.line), e.config().identifier);
        let r = e.process_read(w.line, addr, true);
        assert_eq!(r.verdict, ReadVerdict::Verified);
        assert_eq!(r.line, pte_line());
    }

    #[test]
    fn tampered_pte_walk_fails_or_corrects() {
        let mut e = PtGuardEngine::new(PtGuardConfig {
            correction: false,
            ..PtGuardConfig::default()
        });
        let addr = PhysAddr::new(0x4000);
        let w = e.process_write(pte_line(), addr);
        let mut tampered = w.line;
        tampered.set_word(0, tampered.word(0) ^ (1 << 13)); // PFN bit
        let r = e.process_read(tampered, addr, true);
        assert_eq!(r.verdict, ReadVerdict::CheckFailed);
        assert_eq!(e.stats().check_failures, 1);
    }

    #[test]
    fn tampered_pte_walk_corrected_when_enabled() {
        let mut e = PtGuardEngine::new(PtGuardConfig::default());
        let addr = PhysAddr::new(0x4000);
        let w = e.process_write(pte_line(), addr);
        let mut tampered = w.line;
        tampered.set_word(0, tampered.word(0) ^ (1 << 13));
        let r = e.process_read(tampered, addr, true);
        match r.verdict {
            ReadVerdict::Corrected { .. } => assert_eq!(r.line, pte_line()),
            other => panic!("expected correction, got {other:?}"),
        }
    }

    #[test]
    fn data_line_passes_through_unmodified() {
        let mut e = PtGuardEngine::new(PtGuardConfig::default());
        let addr = PhysAddr::new(0xc0);
        let line = data_line();
        let w = e.process_write(line, addr);
        assert!(!w.protected);
        assert_eq!(w.line, line);
        let r = e.process_read(w.line, addr, false);
        assert!(r.verdict.is_ok());
        assert_eq!(r.line, line);
    }

    #[test]
    fn optimized_skips_mac_for_plain_data() {
        let mut e = PtGuardEngine::new(PtGuardConfig::optimized());
        let line = data_line();
        let r = e.process_read(line, PhysAddr::new(0x100), false);
        assert!(!r.mac_computed);
        assert_eq!(r.added_latency_cycles, 0);
        assert_eq!(e.stats().identifier_skips, 1);
    }

    #[test]
    fn base_mode_computes_mac_on_every_read() {
        let mut e = PtGuardEngine::new(PtGuardConfig::default());
        for i in 0..10u64 {
            let _ = e.process_read(data_line(), PhysAddr::new(i * 64), false);
        }
        assert_eq!(e.stats().read_mac_computations, 10);
    }

    #[test]
    fn zero_line_uses_mac_zero_shortcut() {
        let mut e = PtGuardEngine::new(PtGuardConfig::optimized());
        let addr = PhysAddr::new(0x40);
        let w = e.process_write(Line::ZERO, addr);
        assert!(w.protected);
        assert!(!w.mac_computed, "zero line must use the precomputed MAC");
        let r = e.process_read(w.line, addr, false);
        assert_eq!(r.verdict, ReadVerdict::Verified);
        assert!(!r.mac_computed);
        assert_eq!(r.line, Line::ZERO);
        assert_eq!(e.stats().mac_zero_hits, 1);
    }

    #[test]
    fn collision_is_tracked_and_preserved() {
        let mut e = PtGuardEngine::new(PtGuardConfig::default());
        let addr = PhysAddr::new(0x7c0);
        // Forge a colliding line: compute the MAC a protected write would
        // embed, then place it in the data as plain (non-matching) content.
        let payload = Line::from_words([0xabcd, 0, 1, 2, 3, 4, 5, 6]);
        let mac = e.mac_unit().compute(&payload, addr);
        let colliding = pattern::embed_mac(&payload, mac);
        assert!(!pattern::matches_base_pattern(&colliding));
        let w = e.process_write(colliding, addr);
        assert!(w.collision_tracked);
        assert!(e.ctb().contains(addr));
        // The read must forward the data untouched (no stripping!).
        let r = e.process_read(colliding, addr, false);
        assert_eq!(r.verdict, ReadVerdict::Forwarded);
        assert_eq!(r.line, colliding);
        assert!(!r.mac_computed);
    }

    #[test]
    fn ctb_overflow_requests_rekey() {
        let mut e = PtGuardEngine::new(PtGuardConfig::default());
        let mut required = false;
        for i in 0..5u64 {
            let addr = PhysAddr::new(0x1_0000 + i * 64);
            let payload = Line::from_words([i + 1, 0, 0, 0, 0, 0, 0, 0xdead]);
            let mac = e.mac_unit().compute(&payload, addr);
            let colliding = pattern::embed_mac(&payload, mac);
            let w = e.process_write(colliding, addr);
            assert!(w.collision_tracked || w.rekey_required);
            required |= w.rekey_required;
        }
        assert!(required, "fifth collision must demand re-keying");
        assert_eq!(e.stats().rekeys, 1);
    }

    #[test]
    fn overwrite_clears_ctb_entry() {
        let mut e = PtGuardEngine::new(PtGuardConfig::default());
        let addr = PhysAddr::new(0x7c0);
        let payload = Line::from_words([0xabcd, 0, 1, 2, 3, 4, 5, 6]);
        let mac = e.mac_unit().compute(&payload, addr);
        let colliding = pattern::embed_mac(&payload, mac);
        e.process_write(colliding, addr);
        assert!(e.ctb().contains(addr));
        e.process_write(data_line(), addr);
        assert!(!e.ctb().contains(addr));
    }

    #[test]
    fn rekey_memory_preserves_pte_contents() {
        use pagetable::memory::VecMemory;
        let mut e = PtGuardEngine::new(PtGuardConfig::default());
        let mut mem = VecMemory::new(4096);
        let addr = PhysAddr::new(0x140);
        let w = e.process_write(pte_line(), addr);
        mem.write_line(addr, &w.line.to_bytes());
        let reprotected = e.rekey_memory(&mut mem, [0x1111, 0x2222]);
        assert!(reprotected >= 1);
        let after = Line::from_bytes(&mem.read_line(addr));
        assert_ne!(after, w.line, "MAC must change under the new key");
        let r = e.process_read(after, addr, true);
        assert_eq!(r.verdict, ReadVerdict::Verified);
        assert_eq!(r.line, pte_line());
    }

    #[test]
    fn optimized_requires_the_extended_pattern() {
        // A line whose 96 MAC-region bits are zero but whose ignored bits
        // are dirty: base PT-Guard protects it (96-bit match), Optimized
        // does not (152-bit match fails) — exactly the Section V-A
        // trade-off that shrinks the protected-data-line population.
        let mut line = pte_line();
        line.set_word(2, 1 << 53); // inside the ignored/identifier region
        let addr = PhysAddr::new(0x9000);

        let mut base = PtGuardEngine::new(PtGuardConfig::default());
        assert!(base.process_write(line, addr).protected);

        let mut opt = PtGuardEngine::new(PtGuardConfig::optimized());
        let w = opt.process_write(line, addr);
        assert!(!w.protected);
        assert_eq!(w.line, line, "non-matching line stored verbatim");
        // And the read path forwards it untouched without MAC latency
        // (its identifier region does not alias the identifier).
        let r = opt.process_read(line, addr, false);
        assert!(!r.mac_computed);
        assert_eq!(r.line, line);
    }

    #[test]
    fn identifier_coincidence_costs_a_mac_but_stays_correct() {
        // A data line whose ignored bits happen to equal the identifier:
        // the read must compute the MAC (the identifier said "protected"),
        // find a mismatch, and forward the data unchanged (Section V-A:
        // identifier collisions are not tracked).
        let mut e = PtGuardEngine::new(PtGuardConfig::optimized());
        let id = e.config().identifier;
        let payload = Line::from_words([0xdead_beef, 1, 2, 3, 4, 5, 6, 0xffff_0000_0000_0001]);
        let coincident = pattern::embed_identifier(&payload, id);
        let w = e.process_write(coincident, PhysAddr::new(0xa000));
        assert!(!w.protected, "mac region is dirty, so no pattern match");
        let r = e.process_read(coincident, PhysAddr::new(0xa000), false);
        assert!(r.mac_computed, "identifier coincidence forces the check");
        assert_eq!(r.line, coincident, "data must pass through unmodified");
        assert_eq!(e.stats().identifier_skips, 0);
    }

    #[test]
    fn protected_write_clears_stale_ctb_entry() {
        // A colliding data line gets tracked; the OS later places a page
        // table at the same address — the protected write must untrack it,
        // or walks there would skip verification forever.
        let mut e = PtGuardEngine::new(PtGuardConfig::default());
        let addr = PhysAddr::new(0xb000);
        let payload = Line::from_words([7, 0, 1, 2, 3, 4, 5, 6]);
        let mac = e.mac_unit().compute(&payload, addr);
        let colliding = pattern::embed_mac(&payload, mac);
        assert!(e.process_write(colliding, addr).collision_tracked);
        assert!(e.ctb().contains(addr));

        let w = e.process_write(pte_line(), addr);
        assert!(w.protected);
        assert!(!e.ctb().contains(addr), "stale CTB entry must be cleared");
        let r = e.process_read(w.line, addr, true);
        assert_eq!(r.verdict, ReadVerdict::Verified, "walks must verify again");
    }

    #[test]
    fn zero_line_roundtrips_in_base_mode_with_address_bound_mac() {
        // Without the optimizations there is no MAC-zero: all-zero lines get
        // ordinary address-bound MACs and full verification.
        let mut e = PtGuardEngine::new(PtGuardConfig::default());
        let a1 = PhysAddr::new(0xc000);
        let a2 = PhysAddr::new(0xc040);
        let w1 = e.process_write(Line::ZERO, a1);
        let w2 = e.process_write(Line::ZERO, a2);
        assert!(w1.mac_computed && w2.mac_computed);
        assert_ne!(
            w1.line, w2.line,
            "address binding must differentiate zero lines"
        );
        assert_eq!(
            e.process_read(w1.line, a1, true).verdict,
            ReadVerdict::Verified
        );
        assert_eq!(
            e.process_read(w2.line, a1, true).verdict,
            ReadVerdict::CheckFailed,
            "a relocated zero line must not verify"
        );
    }

    #[test]
    fn identifier_bit_flips_degrade_to_baseline_for_data() {
        // Section V-A's security argument: flipping identifier bits of a
        // protected *data* line makes reads skip the MAC check and forward
        // the line as-is (MAC still embedded) — "similar to bit flips in
        // regular data without the MAC". For *PTE walks* the check runs
        // regardless of the identifier, so page tables lose nothing.
        let mut e = PtGuardEngine::new(PtGuardConfig::optimized());
        let addr = PhysAddr::new(0xd000);
        let w = e.process_write(pte_line(), addr);

        let mut id_flipped = w.line;
        id_flipped.set_word(0, id_flipped.word(0) ^ (1 << 53)); // identifier bit

        // Data read: identifier mismatch -> forwarded unchanged, no MAC.
        let r = e.process_read(id_flipped, addr, false);
        assert_eq!(r.verdict, ReadVerdict::Forwarded);
        assert!(!r.mac_computed);
        assert_eq!(
            r.line, id_flipped,
            "line (with MAC residue) forwarded as-is"
        );

        // Page-table walk of the same line: the MAC check still runs and
        // the identifier flip is trivially repaired (id bits are stripped).
        let r = e.process_read(id_flipped, addr, true);
        assert!(r.mac_computed);
        assert_eq!(r.verdict, ReadVerdict::Verified);
        assert_eq!(r.line, pte_line());
    }

    #[test]
    fn accessed_bit_updates_do_not_break_verification() {
        // Hardware sets the accessed bit in cached PTEs; on eviction the
        // line is rewritten. But even a stale MAC'd line whose accessed bit
        // differs verifies, because the accessed bit is unprotected.
        let mut e = PtGuardEngine::new(PtGuardConfig::default());
        let addr = PhysAddr::new(0x4000);
        let w = e.process_write(pte_line(), addr);
        let mut with_accessed = w.line;
        with_accessed.set_word(0, with_accessed.word(0) | pagetable::x86_64::bits::ACCESSED);
        let r = e.process_read(with_accessed, addr, true);
        assert_eq!(r.verdict, ReadVerdict::Verified);
    }
}
