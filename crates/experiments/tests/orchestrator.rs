//! End-to-end orchestration over real artefacts: byte-identical output for
//! any worker count, warm-cache runs executing nothing, and multi-seed
//! sweep determinism.

use std::fs;
use std::path::PathBuf;

use experiments::orchestrate::{plan_artefacts, plan_sweep};
use experiments::Scale;
use orchestrator::{run_dag, DiskCache, RunOptions, RunReport};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "ptguard-expo-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Fast artefacts exercised by these tests (stochastic + static).
fn subset() -> Vec<String> {
    ["table1", "priorwork", "coverage"]
        .iter()
        .map(ToString::to_string)
        .collect()
}

fn stdout_of(report: &RunReport) -> String {
    report
        .outputs
        .iter()
        .map(|o| o.as_ref().expect("job succeeded").rendered.clone())
        .collect()
}

#[test]
fn stdout_is_byte_identical_across_worker_counts() {
    let serial = run_dag(
        plan_artefacts(&subset(), Scale::Trial, 0, 1).unwrap().specs,
        RunOptions {
            jobs: 1,
            ..RunOptions::default()
        },
    );
    assert!(serial.error.is_none());
    let parallel = run_dag(
        plan_artefacts(&subset(), Scale::Trial, 0, 1).unwrap().specs,
        RunOptions {
            jobs: 4,
            ..RunOptions::default()
        },
    );
    assert!(parallel.error.is_none());
    assert_eq!(stdout_of(&serial), stdout_of(&parallel));
}

#[test]
fn warm_cache_rerun_executes_nothing_and_matches() {
    let tmp = TempDir::new("warm");
    let cache = DiskCache::open(&tmp.0).unwrap();
    let opts = |jobs| RunOptions {
        label: "warm".to_string(),
        jobs,
        cache: Some(cache.clone()),
        run_dir: None,
    };

    let cold = run_dag(
        plan_artefacts(&subset(), Scale::Trial, 0, 1).unwrap().specs,
        opts(2),
    );
    assert!(cold.error.is_none());
    assert_eq!(cold.executed, 3);

    let warm = run_dag(
        plan_artefacts(&subset(), Scale::Trial, 0, 1).unwrap().specs,
        opts(4),
    );
    assert!(warm.error.is_none());
    assert_eq!(warm.executed, 0, "warm run must be served from cache");
    assert_eq!(warm.cache_hits, 3);
    assert_eq!(stdout_of(&cold), stdout_of(&warm));
}

#[test]
fn sweep_aggregate_is_deterministic_and_jobs_independent() {
    let names = vec!["priorwork".to_string(), "coverage".to_string()];
    let seeds = [1u64, 2, 3];
    let serial = run_dag(
        plan_sweep(&names, Scale::Trial, &seeds, 1).unwrap().specs,
        RunOptions {
            jobs: 1,
            ..RunOptions::default()
        },
    );
    assert!(serial.error.is_none());
    let parallel = run_dag(
        plan_sweep(&names, Scale::Trial, &seeds, 1).unwrap().specs,
        RunOptions {
            jobs: 4,
            ..RunOptions::default()
        },
    );
    assert!(parallel.error.is_none());

    // Same seed set => identical aggregated tables, whatever the pool size.
    assert_eq!(stdout_of(&serial), stdout_of(&parallel));

    // The aggregate rows genuinely reflect seed spread: the stochastic
    // monotonic-pointer rate must have non-zero stdev across seeds.
    let plan = plan_sweep(&names, Scale::Trial, &seeds, 1).unwrap();
    let agg_idx = plan.sections[0].job;
    let agg = serial.outputs[agg_idx].as_ref().unwrap();
    let sd = agg
        .metric_value("1 random flip.monotonic.stdev")
        .expect("aggregated stdev metric");
    assert!(sd > 0.0, "expected seed spread, stdev = {sd}");
    assert!(agg.rendered.contains("±"), "table renders mean ± stdev");
}
