//! The DAG engine: schedules a topologically-ordered job list across the
//! work-stealing pool, memoizes outputs in the disk cache, and streams
//! events to the run's JSONL log.
//!
//! Execution model:
//!
//! * Every job's **final cache key** is the stable hash of its own key
//!   material plus the final keys of its dependencies, so editing any
//!   upstream input transitively invalidates downstream entries.
//! * A job with a cache hit is *not* executed; its stored output is used,
//!   byte-identical to the original run.
//! * A failing (or panicking) job marks the run failed; its dependents are
//!   skipped, but every independent job still runs to completion — and
//!   keeps its cache entry — so a resumed run only re-executes what is
//!   actually missing.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::cache::DiskCache;
use crate::events::{write_manifest, EventLog, JobOutcome};
use crate::hash::stable_key;
use crate::job::{JobOutput, JobSpec};
use crate::json::Value;
use crate::pool::ThreadPool;

/// Options for one [`run_dag`] invocation.
#[derive(Debug)]
pub struct RunOptions {
    /// Label recorded in the event log and manifest (e.g. the CLI line).
    pub label: String,
    /// Worker threads (`0` = all available cores).
    pub jobs: usize,
    /// The memoization cache; `None` disables caching.
    pub cache: Option<DiskCache>,
    /// Directory receiving `events.jsonl` + `manifest.json`; `None`
    /// disables run logging.
    pub run_dir: Option<PathBuf>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            label: String::from("run"),
            jobs: 0,
            cache: None,
            run_dir: None,
        }
    }
}

/// Per-job accounting in the final report and manifest.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job's display id.
    pub id: String,
    /// The job's final (dependency-extended) cache key.
    pub key: String,
    /// How the job concluded.
    pub outcome: JobOutcome,
    /// Wall time spent executing (0 for cache hits and skips).
    pub wall_ms: u64,
    /// The job's deterministic simulated-op count.
    pub sim_ops: u64,
}

/// The result of a [`run_dag`] call.
#[derive(Debug)]
pub struct RunReport {
    /// One output per job, in submission order. `None` for failed or
    /// skipped jobs.
    pub outputs: Vec<Option<JobOutput>>,
    /// Per-job accounting, in submission order.
    pub jobs: Vec<JobReport>,
    /// Jobs whose closure actually ran and succeeded.
    pub executed: usize,
    /// Jobs served from the cache.
    pub cache_hits: usize,
    /// First error encountered, if any.
    pub error: Option<String>,
    /// Total wall time of the run.
    pub wall_ms: u64,
    /// Highest per-job throughput observed (`sim_ops / wall`), in ops/sec.
    pub peak_ops_per_sec: f64,
    /// Where the manifest was written, when run logging was enabled.
    pub run_dir: Option<PathBuf>,
}

impl RunReport {
    /// All outputs, in order, when the run fully succeeded.
    ///
    /// # Panics
    ///
    /// Panics if any job failed — check [`RunReport::error`] first.
    #[must_use]
    pub fn unwrap_outputs(&self) -> Vec<&JobOutput> {
        self.outputs
            .iter()
            .map(|o| o.as_ref().expect("job failed; check RunReport::error"))
            .collect()
    }
}

struct State {
    outputs: Vec<Option<JobOutput>>,
    reports: Vec<Option<JobReport>>,
    /// Unmet dependency count per job.
    pending: Vec<usize>,
    /// Jobs whose dependencies are all met, not yet submitted.
    ready: Vec<usize>,
    /// Jobs not yet concluded.
    remaining: usize,
    error: Option<String>,
}

struct Ctx {
    specs: Vec<JobSpec>,
    keys: Vec<String>,
    dependents: Vec<Vec<usize>>,
    cache: Option<DiskCache>,
    log: EventLog,
    state: Mutex<State>,
    progress: Condvar,
}

/// Executes the DAG. `specs` must be in topological order: every
/// dependency index smaller than the dependent's own index.
#[must_use]
pub fn run_dag(specs: Vec<JobSpec>, opts: RunOptions) -> RunReport {
    let n = specs.len();
    let started = Instant::now();

    // Validate topological order up front.
    for (j, spec) in specs.iter().enumerate() {
        if let Some(&bad) = spec.deps.iter().find(|&&d| d >= j) {
            return RunReport {
                outputs: (0..n).map(|_| None).collect(),
                jobs: Vec::new(),
                executed: 0,
                cache_hits: 0,
                error: Some(format!(
                    "job {j} (`{}`) depends on {bad}, which does not precede it",
                    spec.id
                )),
                wall_ms: 0,
                peak_ops_per_sec: 0.0,
                run_dir: None,
            };
        }
    }

    // Final content-addresses: own key material + dependency keys.
    let mut keys: Vec<String> = Vec::with_capacity(n);
    for spec in &specs {
        let mut material = spec.key_material.clone();
        for &d in &spec.deps {
            material.push(keys[d].clone());
        }
        keys.push(stable_key(&material));
    }

    let mut dependents = vec![Vec::new(); n];
    let mut pending = vec![0usize; n];
    for (j, spec) in specs.iter().enumerate() {
        pending[j] = spec.deps.len();
        for &d in &spec.deps {
            dependents[d].push(j);
        }
    }

    // Run logging.
    let (log, run_dir) = match &opts.run_dir {
        Some(dir) => match std::fs::create_dir_all(dir)
            .and_then(|()| EventLog::create(&dir.join("events.jsonl")))
        {
            Ok(log) => (log, Some(dir.clone())),
            Err(e) => {
                eprintln!("orchestrator: cannot open run dir {}: {e}", dir.display());
                (EventLog::disabled(), None)
            }
        },
        None => (EventLog::disabled(), None),
    };

    let pool = ThreadPool::new(opts.jobs);
    log.emit(
        "run_start",
        vec![
            ("run", Value::Str(opts.label.clone())),
            ("jobs", Value::U64(n as u64)),
            ("workers", Value::U64(pool.size() as u64)),
            (
                "cache_dir",
                opts.cache
                    .as_ref()
                    .map_or(Value::Null, |c| Value::Str(c.dir().display().to_string())),
            ),
        ],
    );

    let ready: Vec<usize> = (0..n).filter(|&j| pending[j] == 0).collect();
    let ctx = Arc::new(Ctx {
        specs,
        keys,
        dependents,
        cache: opts.cache,
        log,
        state: Mutex::new(State {
            outputs: (0..n).map(|_| None).collect(),
            reports: (0..n).map(|_| None).collect(),
            pending,
            ready,
            remaining: n,
            error: None,
        }),
        progress: Condvar::new(),
    });

    // Scheduling loop: drain the ready list into the pool, wait for
    // progress, repeat until every job has concluded.
    {
        let mut guard = ctx.state.lock().expect("engine lock");
        loop {
            for j in std::mem::take(&mut guard.ready) {
                let ctx = Arc::clone(&ctx);
                pool.spawn(move || execute_job(&ctx, j));
            }
            if guard.remaining == 0 {
                break;
            }
            guard = ctx.progress.wait(guard).expect("engine lock");
        }
    }
    drop(pool); // joins the workers

    let state = ctx.state.lock().expect("engine lock");
    let jobs: Vec<JobReport> = state
        .reports
        .iter()
        .map(|r| r.clone().expect("every job concluded"))
        .collect();
    let executed = jobs
        .iter()
        .filter(|r| r.outcome == JobOutcome::Executed)
        .count();
    let cache_hits = jobs
        .iter()
        .filter(|r| r.outcome == JobOutcome::CacheHit)
        .count();
    let wall_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
    let peak_ops_per_sec = jobs
        .iter()
        .filter(|r| r.outcome == JobOutcome::Executed && r.wall_ms > 0 && r.sim_ops > 0)
        .map(|r| ops_per_sec(r.sim_ops, r.wall_ms))
        .fold(0.0f64, f64::max);

    ctx.log.emit(
        "run_finish",
        vec![
            ("executed", Value::U64(executed as u64)),
            ("cache_hits", Value::U64(cache_hits as u64)),
            ("wall_ms", Value::U64(wall_ms)),
            ("peak_ops_per_sec", Value::F64(peak_ops_per_sec)),
            (
                "error",
                state
                    .error
                    .as_ref()
                    .map_or(Value::Null, |e| Value::Str(e.clone())),
            ),
        ],
    );

    if let Some(dir) = &run_dir {
        let manifest = Value::obj(vec![
            ("run", Value::Str(opts.label.clone())),
            (
                "orchestrator_version",
                Value::Str(env!("CARGO_PKG_VERSION").to_string()),
            ),
            ("workers", Value::U64(pool_size_for_manifest(opts.jobs))),
            ("jobs", Value::U64(n as u64)),
            ("executed", Value::U64(executed as u64)),
            ("cache_hits", Value::U64(cache_hits as u64)),
            ("wall_ms", Value::U64(wall_ms)),
            ("peak_ops_per_sec", Value::F64(peak_ops_per_sec)),
            (
                "cache_dir",
                ctx.cache
                    .as_ref()
                    .map_or(Value::Null, |c| Value::Str(c.dir().display().to_string())),
            ),
            (
                "error",
                state
                    .error
                    .as_ref()
                    .map_or(Value::Null, |e| Value::Str(e.clone())),
            ),
            (
                "job_list",
                Value::Arr(
                    jobs.iter()
                        .map(|r| {
                            Value::obj(vec![
                                ("id", Value::Str(r.id.clone())),
                                ("key", Value::Str(r.key.clone())),
                                ("outcome", Value::Str(r.outcome.as_str().to_string())),
                                ("wall_ms", Value::U64(r.wall_ms)),
                                ("sim_ops", Value::U64(r.sim_ops)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        if let Err(e) = write_manifest(&dir.join("manifest.json"), &manifest) {
            eprintln!("orchestrator: cannot write manifest: {e}");
        }
    }

    RunReport {
        outputs: state.outputs.clone(),
        jobs,
        executed,
        cache_hits,
        error: state.error.clone(),
        wall_ms,
        peak_ops_per_sec,
        run_dir,
    }
}

fn pool_size_for_manifest(jobs: usize) -> u64 {
    if jobs == 0 {
        crate::pool::default_jobs() as u64
    } else {
        jobs as u64
    }
}

#[allow(clippy::cast_precision_loss)]
fn ops_per_sec(sim_ops: u64, wall_ms: u64) -> f64 {
    sim_ops as f64 / (wall_ms.max(1) as f64 / 1000.0)
}

/// Runs (or serves from cache) job `j` on a worker thread.
fn execute_job(ctx: &Arc<Ctx>, j: usize) {
    let spec = &ctx.specs[j];
    let key = &ctx.keys[j];

    // Gather dependency outputs; a missing one means an upstream failure.
    let dep_outputs: Option<Vec<JobOutput>> = {
        let state = ctx.state.lock().expect("engine lock");
        spec.deps
            .iter()
            .map(|&d| state.outputs[d].clone())
            .collect()
    };
    let Some(dep_outputs) = dep_outputs else {
        ctx.log
            .emit("job_skipped", vec![("job", Value::Str(spec.id.clone()))]);
        conclude(ctx, j, None, JobOutcome::Skipped, 0, 0);
        return;
    };

    // Memoization.
    if let Some(cache) = &ctx.cache {
        if let Some(out) = cache.load(key) {
            ctx.log.emit(
                "cache_hit",
                vec![
                    ("job", Value::Str(spec.id.clone())),
                    ("key", Value::Str(key.clone())),
                ],
            );
            let sim_ops = out.sim_ops;
            conclude(ctx, j, Some(out), JobOutcome::CacheHit, 0, sim_ops);
            return;
        }
    }

    ctx.log.emit(
        "job_start",
        vec![
            ("job", Value::Str(spec.id.clone())),
            ("key", Value::Str(key.clone())),
        ],
    );
    let t = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| (spec.run)(&dep_outputs))).unwrap_or_else(|p| {
        let msg = p
            .downcast_ref::<&str>()
            .map(ToString::to_string)
            .or_else(|| p.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "job panicked".to_string());
        Err(format!("panic: {msg}"))
    });
    let wall_ms = u64::try_from(t.elapsed().as_millis()).unwrap_or(u64::MAX);

    match result {
        Ok(out) => {
            if let Some(cache) = &ctx.cache {
                if let Err(e) = cache.store(key, &out) {
                    ctx.log.emit(
                        "cache_store_failed",
                        vec![
                            ("job", Value::Str(spec.id.clone())),
                            ("error", Value::Str(e.to_string())),
                        ],
                    );
                }
            }
            ctx.log.emit(
                "job_finish",
                vec![
                    ("job", Value::Str(spec.id.clone())),
                    ("wall_ms", Value::U64(wall_ms)),
                    ("sim_ops", Value::U64(out.sim_ops)),
                    ("ops_per_sec", Value::F64(ops_per_sec(out.sim_ops, wall_ms))),
                ],
            );
            let sim_ops = out.sim_ops;
            conclude(ctx, j, Some(out), JobOutcome::Executed, wall_ms, sim_ops);
        }
        Err(e) => {
            ctx.log.emit(
                "job_failed",
                vec![
                    ("job", Value::Str(spec.id.clone())),
                    ("error", Value::Str(e.clone())),
                ],
            );
            let mut state = ctx.state.lock().expect("engine lock");
            if state.error.is_none() {
                state.error = Some(format!("{}: {e}", spec.id));
            }
            drop(state);
            conclude(ctx, j, None, JobOutcome::Failed, wall_ms, 0);
        }
    }
}

/// Records job `j`'s conclusion and releases any newly-ready dependents.
fn conclude(
    ctx: &Arc<Ctx>,
    j: usize,
    output: Option<JobOutput>,
    outcome: JobOutcome,
    wall_ms: u64,
    sim_ops: u64,
) {
    let mut state = ctx.state.lock().expect("engine lock");
    state.outputs[j] = output;
    state.reports[j] = Some(JobReport {
        id: ctx.specs[j].id.clone(),
        key: ctx.keys[j].clone(),
        outcome,
        wall_ms,
        sim_ops,
    });
    for &dep in &ctx.dependents[j] {
        state.pending[dep] -= 1;
        if state.pending[dep] == 0 {
            state.ready.push(dep);
        }
    }
    state.remaining -= 1;
    drop(state);
    ctx.progress.notify_all();
}
