//! Best-effort-correction benches (Section VI-D): cost of each guess
//! strategy and the 372-guess worst case.

use pagetable::addr::PhysAddr;
use ptguard::correct::Corrector;
use ptguard::line::Line;
use ptguard::mac::PteMac;
use ptguard::pattern::embed_mac;
use ptguard::PtGuardConfig;
use ptguard_bench::harness::{black_box, Bench};
use ptguard_bench::{protected_sample, sample_pte_line};

fn main() {
    let mut g = Bench::group("correction");
    let mac = PteMac::from_config(&PtGuardConfig::default());
    let addr = PhysAddr::new(0xbeef_0040);
    let clean = protected_sample(&mac, addr);
    let corrector = Corrector::new(&mac, 4, 4);

    // Step 1: MAC-only faults — one soft-match guess.
    let mut mac_fault = clean;
    mac_fault.set_word(0, mac_fault.word(0) ^ (1 << 43));
    g.bench("soft_match_1_guess", || {
        corrector.correct(black_box(&mac_fault), addr)
    });

    // Step 2: early vs late single-bit flips (flip-and-check linear scan).
    let mut early = clean;
    early.flip_bit(0);
    g.bench("flip_and_check_early_bit", || {
        corrector.correct(black_box(&early), addr)
    });
    let mut late = clean;
    late.flip_bit(7 * 64 + 63); // NX of the last entry
    g.bench("flip_and_check_late_bit", || {
        corrector.correct(black_box(&late), addr)
    });

    // Steps 3-5 and the uncorrectable worst case (all 372 guesses burned).
    let mut zero_damage = clean;
    zero_damage.set_word(7, zero_damage.word(7) ^ 0b101);
    g.bench("zero_reset_path", || {
        corrector.correct(black_box(&zero_damage), addr)
    });

    let mut noncontig = Line::ZERO;
    for (i, p) in [0x0a1_b2c3u64, 0x571_0000, 0x123_4567, 0x0ff_ff00]
        .iter()
        .enumerate()
    {
        noncontig.set_word(i, (p << 12) | 0x27);
    }
    let noncontig = embed_mac(&noncontig, mac.compute(&noncontig, addr));
    let mut wrecked = noncontig;
    wrecked.set_word(0, wrecked.word(0) ^ (1 << 13));
    wrecked.set_word(1, wrecked.word(1) ^ (1 << 14));
    wrecked.set_word(2, wrecked.word(2) ^ (1 << 15));
    g.bench("uncorrectable_372_guesses", || {
        corrector.correct(black_box(&wrecked), addr)
    });

    // Reference: the no-damage fast path (exact verify, no correction).
    let line = sample_pte_line();
    g.bench("reference_exact_verify", || {
        mac.verify(black_box(&line), addr, black_box(0))
    });
}
