//! # ptguard-serve: the MAC engine as a long-running service
//!
//! PT-Guard's production shape (ROADMAP item 3): the controller-resident
//! MAC engine exposed as a std-only TCP service so sustained, concurrent
//! traffic exercises the batched verify path the way a loaded memory
//! controller would.
//!
//! * [`proto`] — the length-prefixed, CRC-checked binary wire protocol
//!   (embed / verify / correct / shutdown); malformed frames poison only
//!   their own connection.
//! * [`core`] — the request-coalescing batch core: concurrent requests
//!   from independent connections drain in batches of up to
//!   [`core::MAX_BATCH`] through one [`ptguard::PteMac::compute_batch_into`]
//!   call, on stack buffers, allocation-free in steady state.
//! * [`server`] — accept loop, per-connection reader/writer threads, and
//!   graceful in-band shutdown (drain, ack, close).
//! * [`client`] — a small blocking client with a split mode for pipelined
//!   open-loop traffic.
//! * [`hist`] — the shared log2 latency histogram (also used by `bench`).
//! * [`corpus`] — census-derived request corpora with pre-embedded MACs.
//! * [`load`] — the open-loop load generator: seeded Poisson arrivals,
//!   coordinated-omission-free latency, p50/p99/p999 per target rate.
//! * [`sim`] — a deterministic discrete-event model of the same pipeline
//!   (virtual clock, real MACs) backing the cacheable `exp serve`
//!   artefact.

#![warn(missing_docs)]

pub mod client;
pub mod core;
pub mod corpus;
pub mod hist;
pub mod load;
pub mod proto;
pub mod server;
pub mod sim;
