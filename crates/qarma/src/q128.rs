//! QARMA-128: 128-bit blocks, 8-bit cells, 256-bit key.
//!
//! This is the variant PT-Guard uses to MAC page-table-entry cachelines
//! (Section IV-F of the paper): four 16-byte chunks of the 64-byte line are
//! each enciphered under their 16-byte-granular address as tweak and the
//! results folded.

use crate::consts::{ALPHA128, C128, MAX_ROUNDS_128};
use crate::engine::{ortho128, Core};
use crate::sbox::Sbox;

/// The QARMA-128 tweakable block cipher.
///
/// The 256-bit key is supplied as `(w0, k0)` 128-bit halves; `w1 = o(w0)` and
/// `k1 = M·k0` are derived internally.
///
/// # Example
///
/// ```
/// use qarma::{Qarma128, Sbox};
///
/// let cipher = Qarma128::new([1, 2], 9, Sbox::Sigma1);
/// let ct = cipher.encrypt(0xdead_beef, 42);
/// assert_eq!(cipher.decrypt(ct, 42), 0xdead_beef);
/// ```
#[derive(Debug, Clone)]
pub struct Qarma128 {
    core: Core,
}

impl Qarma128 {
    /// Creates a QARMA-128 instance with `r` forward/backward rounds.
    ///
    /// PT-Guard uses an "18-round" QARMA-128, i.e. `r = 9` forward and
    /// backward rounds around the reflector.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero or exceeds [`MAX_ROUNDS_128`].
    #[must_use]
    pub fn new(key: [u128; 2], rounds: usize, sbox: Sbox) -> Self {
        assert!(
            (1..=MAX_ROUNDS_128).contains(&rounds),
            "QARMA-128 supports 1..={MAX_ROUNDS_128} rounds, got {rounds}"
        );
        // The packed-lane state of the core *is* the native 128-bit word
        // (cell 0 = most-significant byte), so keys and constants pass
        // straight through.
        let core = Core::new(
            8,
            rounds,
            sbox,
            &C128[..rounds],
            ALPHA128,
            key[0],
            ortho128(key[0]),
            key[1],
        );
        Self { core }
    }

    /// Encrypts `plaintext` under `tweak`. Allocation-free.
    #[must_use]
    pub fn encrypt(&self, plaintext: u128, tweak: u128) -> u128 {
        self.core.encrypt(plaintext, tweak)
    }

    /// Decrypts `ciphertext` under `tweak`. Allocation-free.
    #[must_use]
    pub fn decrypt(&self, ciphertext: u128, tweak: u128) -> u128 {
        self.core.decrypt(ciphertext, tweak)
    }

    /// Encrypts a batch of `(plaintext, tweak)` pairs into `out`, one output
    /// word per pair. Allocation-free: `PteMac::compute`, the controller's
    /// verify paths, and the oracle sweeps all batch their chunk encryptions
    /// through here so the whole fold stays in the flat kernel.
    ///
    /// # Panics
    ///
    /// Panics if `pairs.len() != out.len()`.
    pub fn encrypt_many(&self, pairs: &[(u128, u128)], out: &mut [u128]) {
        assert_eq!(pairs.len(), out.len(), "encrypt_many: length mismatch");
        // Two blocks at a time: the interleaved kernel overlaps the two
        // dependency chains, which is where most of the batch speedup lives.
        let mut chunks = out.chunks_exact_mut(2);
        let mut in_chunks = pairs.chunks_exact(2);
        for (slots, ps) in chunks.by_ref().zip(in_chunks.by_ref()) {
            let [q0, q1] = self.core.encrypt2([ps[0].0, ps[1].0], [ps[0].1, ps[1].1]);
            slots[0] = q0;
            slots[1] = q1;
        }
        for (slot, &(p, t)) in chunks
            .into_remainder()
            .iter_mut()
            .zip(in_chunks.remainder())
        {
            *slot = self.encrypt(p, t);
        }
    }

    /// Number of forward/backward rounds `r`.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.core.rounds
    }

    /// The S-box this instance uses.
    #[must_use]
    pub fn sbox(&self) -> Sbox {
        self.core.sbox
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W0: u128 = 0x84be85ce9804e94bec2802d4e0a488e4;
    const K0: u128 = 0x10235374a49bccdde2f10325a89bdcfe;
    const PT: u128 = 0xfb623599da6e8127477d469dec0b8762;
    const TW: u128 = 0x05040302011a1b1c1d1e1f20212223ff;

    #[test]
    fn encrypt_decrypt_roundtrip_all_sboxes_and_rounds() {
        for sbox in [Sbox::Sigma0, Sbox::Sigma1, Sbox::Sigma2] {
            for rounds in [1usize, 2, 5, 9, 11] {
                let c = Qarma128::new([W0, K0], rounds, sbox);
                let ct = c.encrypt(PT, TW);
                assert_eq!(c.decrypt(ct, TW), PT, "r={rounds} sbox={sbox:?}");
            }
        }
    }

    #[test]
    fn distinct_tweaks_give_distinct_ciphertexts() {
        let c = Qarma128::new([W0, K0], 9, Sbox::Sigma1);
        let mut seen = std::collections::HashSet::new();
        for t in 0..64u128 {
            assert!(seen.insert(c.encrypt(PT, t)), "collision at tweak {t}");
        }
    }

    #[test]
    fn avalanche_on_plaintext() {
        let c = Qarma128::new([W0, K0], 9, Sbox::Sigma1);
        let base = c.encrypt(PT, TW);
        let mut total = 0u32;
        for bit in 0..128 {
            total += (c.encrypt(PT ^ (1 << bit), TW) ^ base).count_ones();
        }
        let avg = f64::from(total) / 128.0;
        assert!((52.0..76.0).contains(&avg), "weak avalanche: avg {avg}");
    }

    #[test]
    fn avalanche_on_key() {
        let base = Qarma128::new([W0, K0], 9, Sbox::Sigma1).encrypt(PT, TW);
        let mut total = 0u32;
        for bit in (0..128).step_by(7) {
            let c = Qarma128::new([W0, K0 ^ (1 << bit)], 9, Sbox::Sigma1);
            total += (c.encrypt(PT, TW) ^ base).count_ones();
        }
        let samples = (0..128).step_by(7).count() as f64;
        let avg = f64::from(total) / samples;
        assert!((52.0..76.0).contains(&avg), "weak key avalanche: avg {avg}");
    }

    #[test]
    fn golden_outputs_are_stable() {
        // Regression pins (see q64's golden test for rationale).
        let c9 = Qarma128::new([W0, K0], 9, Sbox::Sigma1);
        assert_eq!(c9.encrypt(PT, TW), 0x430df35e6d4ec8e8d0fde043b2806757);
        let c11 = Qarma128::new([W0, K0], 11, Sbox::Sigma1);
        assert_eq!(c11.encrypt(PT, TW), 0xb69aa3055cc446338673f7d0c7b088a9);
    }

    #[test]
    fn encrypt_many_matches_scalar_for_all_sboxes_and_rounds() {
        use crate::consts::MAX_ROUNDS_128;
        for sbox in [Sbox::Sigma0, Sbox::Sigma1, Sbox::Sigma2] {
            for rounds in 1..=MAX_ROUNDS_128 {
                let c = Qarma128::new([W0, K0], rounds, sbox);
                let pairs: Vec<(u128, u128)> = (0..9)
                    .map(|i| (PT.wrapping_mul(i + 1), TW.rotate_left(i as u32)))
                    .collect();
                let mut batch = vec![0u128; pairs.len()];
                c.encrypt_many(&pairs, &mut batch);
                for (&(p, t), &got) in pairs.iter().zip(&batch) {
                    assert_eq!(got, c.encrypt(p, t), "r={rounds} sbox={sbox:?}");
                }
            }
        }
    }

    #[test]
    fn encryption_is_deterministic() {
        let c = Qarma128::new([W0, K0], 9, Sbox::Sigma1);
        assert_eq!(c.encrypt(PT, TW), c.encrypt(PT, TW));
    }
}
