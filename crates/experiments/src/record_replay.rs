//! The `exp record` / `exp replay` / `exp trace-stats` pipeline.
//!
//! `record` captures a workload's exact op stream (warm-up region plus
//! measured region, i.e. 2 × the scale's instruction budget) into the
//! binary trace format of the [`trace`] crate. `replay` rebuilds the same
//! machine from the trace header and executes the recorded stream through
//! the prefetching [`TraceReader`]; because the machine build is
//! seed-independent and the stream is byte-exact, the replayed
//! [`RunResult`] is bit-identical to the live run the trace was recorded
//! from. `trace-stats` summarizes a trace without simulating it.

use std::path::Path;

use simx::runner::{build_machine_from_source, run, simulate_workload_with, Protection, RunResult};
use trace::{record_to_file, TraceReader, TraceStats};
use workloads::profiles::by_name;
use workloads::tracegen::TraceGenerator;
use workloads::WorkloadProfile;

/// DRAM capacity used by both live and replayed runs (matches
/// [`simx::runner::simulate_workload`]).
const DRAM_GB: u64 = 4;

/// Records `2 × instructions` ops of `profile_name` into `path`.
///
/// Returns a one-line summary (path, op count, file size).
pub fn record(
    profile_name: &str,
    instructions: u64,
    seed: u64,
    path: &Path,
) -> Result<String, String> {
    let profile = lookup(profile_name)?;
    let op_count = 2 * instructions; // warm-up region + measured region
    let ops = TraceGenerator::new(profile, seed);
    record_to_file(path, profile.name, seed, op_count, ops)
        .map_err(|e| format!("recording failed: {e}"))?;
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    Ok(format!(
        "recorded {op_count} ops of {} (seed {seed:#x}) to {} ({:.2} MB, {:.2} bits/op)\n",
        profile.name,
        path.display(),
        bytes as f64 / (1 << 20) as f64,
        8.0 * bytes as f64 / op_count as f64,
    ))
}

/// Replays the trace at `path` under `protection`.
///
/// The first half of the stream warms caches and TLB (unmeasured), the
/// second half is the measured region — mirroring
/// [`simx::runner::simulate_workload`], so the result is bit-identical to
/// the live run with the same profile, seed, and protection.
pub fn replay(path: &Path, protection: Protection) -> Result<RunResult, String> {
    let mut checker = TraceReader::open(path).map_err(|e| format!("cannot open trace: {e}"))?;
    let header = checker.header().clone();
    let profile = lookup(&header.profile)?;
    if header.op_count == 0 || header.op_count % 2 != 0 {
        return Err(format!(
            "trace holds {} ops; expected an even, non-zero count (warm-up + measured)",
            header.op_count
        ));
    }
    // Validate the full stream before simulating: inside the run the op
    // source can only panic on a decode error, so corruption and
    // truncation must be rejected here, as ordinary errors.
    for op in &mut checker {
        op.map_err(|e| format!("invalid trace: {e}"))?;
    }
    drop(checker);
    let reader = TraceReader::open(path).map_err(|e| format!("cannot open trace: {e}"))?;
    let half = header.op_count / 2;
    let mut machine = build_machine_from_source(reader, profile, protection, DRAM_GB);
    let _ = run(&mut machine, half); // warm-up, discarded
    Ok(run(&mut machine, half))
}

/// Replays `path` and also performs the equivalent live run, returning
/// `(replayed, live)` — the pair the determinism tests compare.
pub fn replay_vs_live(
    path: &Path,
    protection: Protection,
) -> Result<(RunResult, RunResult), String> {
    let reader = TraceReader::open(path).map_err(|e| format!("cannot open trace: {e}"))?;
    let header = reader.header().clone();
    drop(reader);
    let replayed = replay(path, protection)?;
    let profile = lookup(&header.profile)?;
    let live = simulate_workload_with(profile, protection, header.op_count / 2, header.seed);
    Ok((replayed, live))
}

/// Renders a [`RunResult`] as the replay report.
#[must_use]
pub fn render_result(source: &str, r: &RunResult) -> String {
    let mut out = String::new();
    out.push_str(&format!("replayed {source}\n"));
    out.push_str(&format!("  instructions     {:>12}\n", r.instructions));
    out.push_str(&format!("  cycles           {:>12}\n", r.cycles));
    out.push_str(&format!("  IPC              {:>12.4}\n", r.ipc()));
    out.push_str(&format!("  LLC MPKI         {:>12.3}\n", r.mpki));
    out.push_str(&format!("  page walks       {:>12}\n", r.walks));
    out.push_str(&format!("  MAC computations {:>12}\n", r.mac_computations));
    out.push_str(&format!("  integrity faults {:>12}\n", r.integrity_faults));
    out
}

/// Renders the `trace-stats` report for the trace at `path`.
pub fn render_stats(path: &Path) -> Result<String, String> {
    let mut reader = TraceReader::open(path).map_err(|e| format!("cannot open trace: {e}"))?;
    let header = reader.header().clone();
    let hot_end = by_name(&header.profile)
        .map(|p: WorkloadProfile| TraceGenerator::HEAP_BASE + p.hot_pages * 4096);
    let s =
        TraceStats::collect(&mut reader, hot_end).map_err(|e| format!("unreadable trace: {e}"))?;
    let pct = |n: u64| 100.0 * n as f64 / s.ops.max(1) as f64;
    let mut out = String::new();
    out.push_str(&format!(
        "trace {} (format v{})\n",
        path.display(),
        header.version
    ));
    out.push_str(&format!("  profile        {}\n", header.profile));
    out.push_str(&format!("  seed           {:#x}\n", header.seed));
    out.push_str(&format!("  ops            {}\n", s.ops));
    out.push_str(&format!(
        "  op mix         {:.1}% compute / {:.1}% load / {:.1}% store\n",
        pct(s.computes),
        pct(s.loads),
        pct(s.stores)
    ));
    out.push_str(&format!(
        "  footprint      {} pages ({:.2} MB touched)\n",
        s.unique_pages,
        s.footprint_bytes() as f64 / (1 << 20) as f64
    ));
    if hot_end.is_some() {
        let mem = s.mem_ops().max(1);
        out.push_str(&format!(
            "  hot/cold split {:.1}% hot / {:.1}% cold of {} memory ops\n",
            100.0 * s.hot_accesses as f64 / mem as f64,
            100.0 * s.cold_accesses as f64 / mem as f64,
            s.mem_ops()
        ));
    } else {
        out.push_str("  hot/cold split unavailable (unknown profile)\n");
    }
    Ok(out)
}

fn lookup(name: &str) -> Result<WorkloadProfile, String> {
    by_name(name).ok_or_else(|| format!("unknown workload profile: {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptguard::PtGuardConfig;

    #[test]
    fn record_replay_is_bit_identical_to_live() {
        let dir = std::env::temp_dir().join("ptguard-rr-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("xz.pttrace");
        record("xz", 20_000, 0xabc, &path).unwrap();
        for protection in [
            Protection::None,
            Protection::PtGuard(PtGuardConfig::default()),
        ] {
            let (replayed, live) = replay_vs_live(&path, protection).unwrap();
            assert_eq!(replayed.cycles, live.cycles);
            assert_eq!(replayed.walks, live.walks);
            assert_eq!(replayed.mac_computations, live.mac_computations);
            assert!((replayed.mpki - live.mpki).abs() == 0.0);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_or_truncated_trace_is_a_plain_error_not_a_panic() {
        let dir = std::env::temp_dir().join("ptguard-rr-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("damaged.pttrace");
        record("mcf", 5_000, 9, &path).unwrap();
        let clean = std::fs::read(&path).unwrap();

        let mut flipped = clean.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        let err = replay(&path, Protection::None).unwrap_err();
        assert!(err.contains("invalid trace"), "{err}");

        std::fs::write(&path, &clean[..clean.len() - 10]).unwrap();
        let err = replay(&path, Protection::None).unwrap_err();
        assert!(err.contains("invalid trace"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_profile_is_a_plain_error() {
        let err = record("no-such-workload", 100, 1, Path::new("/dev/null")).unwrap_err();
        assert!(err.contains("unknown workload profile"));
    }

    #[test]
    fn stats_report_mentions_the_profile() {
        let dir = std::env::temp_dir().join("ptguard-rr-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stats.pttrace");
        record("mcf", 5_000, 7, &path).unwrap();
        let report = render_stats(&path).unwrap();
        assert!(report.contains("profile        mcf"));
        assert!(report.contains("ops            10000"));
        std::fs::remove_file(&path).ok();
    }
}
