//! The analytical security model of Section VI-E.
//!
//! Soft-matching MACs (tolerating ≤ k faulty MAC bits) and making up to
//! `G_max` correction guesses both enlarge the attacker's acceptance region.
//! Equation 1 quantifies the escape probability,
//!
//! ```text
//! p_escape = G_max · Σ_{h=0..k} C(n,h) / 2ⁿ,     n_eff = −log₂(p_escape)
//! ```
//!
//! and Equation 2 gives the probability that more than `k` bits of the
//! stored MAC itself flipped (an *uncorrectable* MAC):
//!
//! ```text
//! p_uncorrectable = Σ_{i=k+1..n} C(n,i) · p_flip^i · (1−p_flip)^(n−i)
//! ```
//!
//! The paper selects the smallest `k` with `p_uncorrectable < 1 %`; for
//! LPDDR4's worst-case `p_flip ≈ 1 %` this is `k = 4`, giving an effective
//! MAC strength of ≈66 bits and an expected attack time of >10⁴ years.

use crate::config::MAC_BITS;
use crate::correct::G_MAX;

/// Exact binomial coefficient as `u128`.
///
/// # Panics
///
/// Panics on overflow (not reachable for `n ≤ 128`, `k ≤ 5` as used here;
/// large `k` uses the symmetric form and may overflow for `n = 128, k = 64`).
#[must_use]
pub fn binomial(n: u32, k: u32) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc
            .checked_mul(u128::from(n - i))
            .expect("binomial overflow");
        acc /= u128::from(i + 1);
    }
    acc
}

/// Number of MAC values within Hamming distance `k` of a given value
/// (the soft-match acceptance ball): `Σ_{h=0..k} C(n,h)`.
#[must_use]
pub fn acceptance_ball(n: u32, k: u32) -> u128 {
    (0..=k).map(|h| binomial(n, h)).sum()
}

/// Equation 1: probability that a tampered PTE escapes detection after up to
/// `g_max` guesses with soft-match tolerance `k` on an `n`-bit MAC.
#[must_use]
pub fn p_escape(n: u32, k: u32, g_max: u32) -> f64 {
    let ball = acceptance_ball(n, k) as f64;
    (f64::from(g_max) * ball) / 2f64.powi(n as i32)
}

/// Effective MAC strength in bits: `n_eff = −log₂(p_escape)`.
#[must_use]
pub fn effective_mac_bits(n: u32, k: u32, g_max: u32) -> f64 {
    -p_escape(n, k, g_max).log2()
}

/// Loss of security (bits) relative to the raw `n`-bit MAC.
#[must_use]
pub fn security_loss_bits(n: u32, k: u32, g_max: u32) -> f64 {
    f64::from(n) - effective_mac_bits(n, k, g_max)
}

/// Equation 2: probability that an `n`-bit MAC suffers more than `k` bit
/// flips at per-bit flip probability `p_flip`.
#[must_use]
pub fn p_uncorrectable(n: u32, k: u32, p_flip: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p_flip));
    // Complement of the CDF up to k; computed in log space for stability.
    let mut total = 0.0f64;
    for i in (k + 1)..=n {
        let ln_c = ln_binomial(n, i);
        let ln_p = f64::from(i) * p_flip.ln() + f64::from(n - i) * (1.0 - p_flip).ln();
        total += (ln_c + ln_p).exp();
    }
    total.min(1.0)
}

fn ln_binomial(n: u32, k: u32) -> f64 {
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

fn ln_factorial(n: u32) -> f64 {
    (2..=u64::from(n)).map(|i| (i as f64).ln()).sum()
}

/// The smallest `k` for which `p_uncorrectable(n, k, p_flip)` drops below
/// `target` (the paper uses `target = 1 %`).
#[must_use]
pub fn select_k(n: u32, p_flip: f64, target: f64) -> u32 {
    (0..n)
        .find(|&k| p_uncorrectable(n, k, p_flip) < target)
        .unwrap_or(n)
}

/// Expected time (in years) for a Rowhammer attack to escape detection,
/// assuming one attempt per DRAM access of `access_ns` nanoseconds
/// (Section IV-G uses 50 ns and a bit flip on every access).
#[must_use]
pub fn attack_years(p_escape: f64, access_ns: f64) -> f64 {
    let seconds = access_ns * 1e-9 / p_escape;
    seconds / (365.25 * 24.0 * 3600.0)
}

/// The paper's headline security numbers for the default design.
#[derive(Debug, Clone, Copy)]
pub struct SecuritySummary {
    /// MAC width `n`.
    pub n: u32,
    /// Soft-match tolerance `k`.
    pub k: u32,
    /// Maximum correction guesses.
    pub g_max: u32,
    /// Escape probability (Equation 1).
    pub p_escape: f64,
    /// Effective MAC bits.
    pub n_eff: f64,
    /// Uncorrectable-MAC probability at LPDDR4 worst case (`p_flip = 1 %`).
    pub p_uncorrectable_lpddr4: f64,
    /// Expected attack time in years.
    pub attack_years: f64,
}

impl SecuritySummary {
    /// Computes the summary for the paper's default (`n = 96`, `k = 4`,
    /// `G_max = 372`).
    #[must_use]
    pub fn paper_default() -> Self {
        let (n, k, g_max) = (MAC_BITS, 4, G_MAX);
        let pe = p_escape(n, k, g_max);
        Self {
            n,
            k,
            g_max,
            p_escape: pe,
            n_eff: effective_mac_bits(n, k, g_max),
            p_uncorrectable_lpddr4: p_uncorrectable(n, k, 0.01),
            attack_years: attack_years(pe, 50.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(96, 0), 1);
        assert_eq!(binomial(96, 1), 96);
        assert_eq!(binomial(96, 2), 4560);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(10, 3), 120);
    }

    #[test]
    fn paper_headline_k4_gives_66_effective_bits() {
        // Section VI-E: with n = 96, k = 4, G_max = 372 the effective MAC
        // strength is ~66 bits.
        let n_eff = effective_mac_bits(96, 4, G_MAX);
        assert!((65.0..67.0).contains(&n_eff), "n_eff = {n_eff}");
    }

    #[test]
    fn no_correction_means_full_96_bits() {
        // Foregoing correction (exact match, single check) keeps the raw
        // MAC strength (Section VII-A).
        let n_eff = effective_mac_bits(96, 0, 1);
        assert!((n_eff - 96.0).abs() < 1e-9, "n_eff = {n_eff}");
    }

    #[test]
    fn k4_keeps_uncorrectable_below_1pct_at_lpddr4() {
        // Equation 2 at p_flip = 1 % (LPDDR4 worst case).
        assert!(p_uncorrectable(96, 4, 0.01) < 0.01);
        assert!(
            p_uncorrectable(96, 3, 0.01) >= 0.01 * 0.1,
            "k=3 should be near/above the bar"
        );
        assert_eq!(select_k(96, 0.01, 0.01), 4, "the paper selects k = 4");
    }

    #[test]
    fn ddr4_needs_smaller_k() {
        // At p_flip = 0.1–0.2 % far fewer MAC bits flip.
        let k = select_k(96, 0.002, 0.01);
        assert!(k <= 2, "k = {k}");
    }

    #[test]
    fn attack_time_exceeds_ten_thousand_years() {
        let s = SecuritySummary::paper_default();
        assert!(s.attack_years > 1e4, "attack years = {}", s.attack_years);
        assert!((65.0..67.0).contains(&s.n_eff));
    }

    #[test]
    fn raw_mac_attack_time_exceeds_1e14_years() {
        // Section IV-G: a 96-bit exact MAC at one attempt per 50 ns DRAM
        // access needs > 10^14 years.
        let years = attack_years(p_escape(96, 0, 1), 50.0);
        assert!(years > 1e14, "years = {years}");
    }

    #[test]
    fn p_uncorrectable_monotonic_in_k_and_p() {
        assert!(p_uncorrectable(96, 1, 0.01) > p_uncorrectable(96, 2, 0.01));
        assert!(p_uncorrectable(96, 4, 0.01) > p_uncorrectable(96, 4, 0.001));
        assert_eq!(p_uncorrectable(96, 96, 0.5), 0.0);
    }

    #[test]
    fn escape_probability_grows_with_guesses_and_k() {
        assert!(p_escape(96, 4, 372) > p_escape(96, 4, 1));
        assert!(p_escape(96, 4, 372) > p_escape(96, 1, 372));
        assert!(p_escape(96, 4, 372) < 1e-15);
    }
}
