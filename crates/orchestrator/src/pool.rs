//! A std-only work-stealing thread pool.
//!
//! Each worker owns a deque; submitted tasks are distributed round-robin
//! across the deques. A worker services its own deque from the front and,
//! when empty, steals from the *back* of its siblings' deques, so long jobs
//! queued on one worker migrate to idle workers instead of serializing.
//! An idle worker parks on a condvar with a timeout backstop, making a
//! missed wakeup cost bounded latency rather than a hang.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Task = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// One deque per worker.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Guards the shutdown flag; pairs with `wake`.
    shutdown: Mutex<bool>,
    wake: Condvar,
    /// Round-robin submission cursor.
    next: AtomicUsize,
}

impl Shared {
    /// Grabs a task: own queue first (front), then steal from siblings
    /// (back).
    fn find_task(&self, me: usize) -> Option<Task> {
        if let Some(t) = self.queues[me].lock().expect("pool lock").pop_front() {
            return Some(t);
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(t) = self.queues[victim].lock().expect("pool lock").pop_back() {
                return Some(t);
            }
        }
        None
    }
}

/// The pool. Dropping it signals shutdown and joins every worker; queued
/// tasks are drained before the workers exit.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// The default worker count: every available core.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl ThreadPool {
    /// Spawns a pool of `jobs` workers (`0` means [`default_jobs`]).
    #[must_use]
    pub fn new(jobs: usize) -> ThreadPool {
        let jobs = if jobs == 0 { default_jobs() } else { jobs };
        let shared = Arc::new(Shared {
            queues: (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect(),
            shutdown: Mutex::new(false),
            wake: Condvar::new(),
            next: AtomicUsize::new(0),
        });
        let workers = (0..jobs)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("orch-worker-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawn worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// The worker count.
    #[must_use]
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f(0..n)` on the pool and returns the results **in index
    /// order**, blocking until all complete. The ordering guarantee is what
    /// lets parallel sweeps merge worker output byte-identically to a serial
    /// run: results land in their slot regardless of completion order.
    ///
    /// Must not be called from a task already running on this pool (the
    /// caller blocks on a condvar, not by servicing the queue).
    ///
    /// # Panics
    ///
    /// If a task panics, the panic is resumed on the caller.
    pub fn map_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let slots: Arc<Mutex<Vec<Option<std::thread::Result<R>>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        for i in 0..n {
            let (f, slots, done) = (Arc::clone(&f), Arc::clone(&slots), Arc::clone(&done));
            self.spawn(move || {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)));
                slots.lock().expect("pool lock")[i] = Some(r);
                let (count, cv) = &*done;
                *count.lock().expect("pool lock") += 1;
                cv.notify_all();
            });
        }
        let (count, cv) = &*done;
        let mut finished = count.lock().expect("pool lock");
        while *finished < n {
            finished = cv.wait(finished).expect("pool lock");
        }
        drop(finished);
        let mut slots = slots.lock().expect("pool lock");
        slots
            .iter_mut()
            .map(|s| match s.take().expect("slot filled") {
                Ok(r) => r,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    }

    /// Submits a task.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        let idx = self.shared.next.fetch_add(1, Ordering::Relaxed) % self.workers.len();
        self.shared.queues[idx]
            .lock()
            .expect("pool lock")
            .push_back(Box::new(task));
        // Touch the shutdown mutex so a worker between its queue check and
        // its `wait` cannot miss this notification entirely.
        drop(self.shared.shutdown.lock().expect("pool lock"));
        self.shared.wake.notify_one();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        *self.shared.shutdown.lock().expect("pool lock") = true;
        self.shared.wake.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        if let Some(task) = shared.find_task(me) {
            task();
            continue;
        }
        let guard = shared.shutdown.lock().expect("pool lock");
        if *guard {
            return;
        }
        // Timeout backstop: a wakeup lost to the race window above only
        // delays the worker, it cannot strand a task.
        let _unused = shared
            .wake
            .wait_timeout(guard, Duration::from_millis(20))
            .expect("pool lock");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_once() {
        let pool = ThreadPool::new(4);
        let sum = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicUsize::new(0));
        for i in 1..=1000u64 {
            let (sum, done) = (Arc::clone(&sum), Arc::clone(&done));
            pool.spawn(move || {
                sum.fetch_add(i, Ordering::Relaxed);
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        while done.load(Ordering::Relaxed) < 1000 {
            std::thread::yield_now();
        }
        assert_eq!(sum.load(Ordering::Relaxed), 500_500);
    }

    #[test]
    fn long_tasks_migrate_to_idle_workers() {
        // 8 slow tasks round-robin onto 4 workers; stealing must let all 4
        // run concurrently, so the batch finishes in ~2 rounds, not 8.
        let pool = ThreadPool::new(4);
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let (peak, live, done) = (Arc::clone(&peak), Arc::clone(&live), Arc::clone(&done));
            pool.spawn(move || {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(30));
                live.fetch_sub(1, Ordering::SeqCst);
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        while done.load(Ordering::SeqCst) < 8 {
            std::thread::yield_now();
        }
        assert!(
            peak.load(Ordering::SeqCst) >= 3,
            "stealing should keep several workers busy (peak {})",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn map_indexed_returns_results_in_index_order() {
        let pool = ThreadPool::new(4);
        let out = pool.map_indexed(64, |i| {
            // Stagger completion so index order ≠ completion order.
            std::thread::sleep(Duration::from_micros((64 - i as u64) * 10));
            i * i
        });
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_indexed_propagates_panics() {
        let pool = ThreadPool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map_indexed(8, |i| {
                assert!(i != 5, "boom");
                i
            })
        }));
        assert!(r.is_err());
    }

    #[test]
    fn drop_drains_queued_tasks() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(1);
            for _ in 0..50 {
                let done = Arc::clone(&done);
                pool.spawn(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop joins
        assert_eq!(done.load(Ordering::Relaxed), 50);
    }
}
