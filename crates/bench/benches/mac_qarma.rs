//! MAC primitive microbenches: QARMA-64/128 and the PTE-line MAC
//! (the 10-cycle hardware latency of Section IV-F, in software form).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pagetable::addr::PhysAddr;
use ptguard::mac::PteMac;
use ptguard::PtGuardConfig;
use ptguard_bench::sample_pte_line;
use qarma::pac::PacKey;
use qarma::{Qarma128, Qarma64, Sbox};

fn bench_qarma(c: &mut Criterion) {
    let mut g = c.benchmark_group("qarma");
    g.sample_size(30);

    let q64 = Qarma64::new([0x84be85ce9804e94b, 0xec2802d4e0a488e4], 5, Sbox::Sigma1);
    g.bench_function("qarma64_r5_encrypt", |b| {
        b.iter(|| q64.encrypt(black_box(0xfb623599da6e8127), black_box(0x477d469dec0b8762)))
    });

    let q128 = Qarma128::new([1, 2], 9, Sbox::Sigma1);
    g.bench_function("qarma128_r9_encrypt", |b| {
        b.iter(|| q128.encrypt(black_box(0x0123_4567_89ab_cdef), black_box(42)))
    });
    g.bench_function("qarma128_r9_decrypt", |b| {
        b.iter(|| q128.decrypt(black_box(0x0123_4567_89ab_cdef), black_box(42)))
    });
    g.finish();
}

fn bench_line_mac(c: &mut Criterion) {
    let mut g = c.benchmark_group("pte_line_mac");
    g.sample_size(30);
    let mac = PteMac::from_config(&PtGuardConfig::default());
    let line = sample_pte_line();
    let addr = PhysAddr::new(0x4000);
    g.bench_function("compute_96bit_mac", |b| b.iter(|| mac.compute(black_box(&line), addr)));
    let stored = mac.compute(&line, addr);
    g.bench_function("verify_exact", |b| b.iter(|| mac.verify(black_box(&line), addr, stored)));
    g.bench_function("verify_soft_k4", |b| b.iter(|| mac.soft_verify(black_box(&line), addr, stored, 4)));
    g.finish();
}

fn bench_pac(c: &mut Criterion) {
    let mut g = c.benchmark_group("pac");
    g.sample_size(30);
    let key = PacKey::new([0x84be85ce9804e94b, 0xec2802d4e0a488e4]);
    let signed = key.sign(0x7f12_3456_7890, 0x42);
    g.bench_function("sign", |b| b.iter(|| key.sign(black_box(0x7f12_3456_7890), black_box(0x42))));
    g.bench_function("auth", |b| b.iter(|| key.auth(black_box(signed), black_box(0x42))));
    g.finish();
}

criterion_group!(benches, bench_qarma, bench_line_mac, bench_pac);
criterion_main!(benches);
