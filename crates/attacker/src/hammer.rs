//! Activation-delivery playbooks.
//!
//! Each hammerer drives aggressor-row activations at the groomed
//! [`Placement`] through a [`HammerSession`], which feeds every observed
//! activation — explicit or emergent — to the mitigation under test. The
//! playbooks differ in *how* activations reach DRAM:
//!
//! * [`LoadLoop`] — classic double-sided hammering with explicit accesses.
//! * [`Blacksmith`] — a frequency-scheduled many-sided pattern whose
//!   round-robin phase rotation thrashes small tracker tables (TRRespass /
//!   Blacksmith).
//! * [`HalfDouble`] — drives distance-2 rows below the disturbance
//!   threshold and lets the *mitigation's own* distance-1 victim refreshes
//!   carry the pressure the final row-hop.
//! * [`PtHammer`] — no attacker data access at all: every aggressor
//!   activation emerges from a TLB-missing page-table walk reading the
//!   aggressor leaf PTEs at DRAM. The session's provenance ledger proves
//!   it: `explicit == 0`, all pressure arrives as `walk` activations.

use memsys::system::AccessOutcome;
use rowhammer::{HammerSession, Mitigation};

use crate::alloc::Placement;
use crate::rig::Victim;

/// A hammer session over the full victim machine with a boxed mitigation.
pub type Session = HammerSession<Box<dyn Mitigation>, Victim>;

/// What the hammering phase observed.
#[derive(Debug, Clone, Copy, Default)]
pub struct HammerOutcome {
    /// PT-Guard raised an integrity exception *during* the attack (a walk
    /// the hammerer itself issued hit a tampered line).
    pub detected: bool,
}

/// An activation-delivery playbook.
pub trait Hammerer: Sync {
    /// Playbook name for reports.
    fn name(&self) -> &'static str;

    /// Whether aggressor pressure is delivered purely implicitly (no
    /// explicit attacker accesses to the aggressor rows).
    fn implicit(&self) -> bool {
        false
    }

    /// Runs the attack: `acts_per_side` is the per-aggressor activation
    /// budget of a basic double-sided pattern; playbooks scale it to keep
    /// the campaign's cells comparable.
    fn hammer(&self, s: &mut Session, p: &Placement, acts_per_side: u64) -> HammerOutcome;
}

/// Explicit double-sided hammering: the Seaborn-era baseline.
#[derive(Debug)]
pub struct LoadLoop;

impl Hammerer for LoadLoop {
    fn name(&self) -> &'static str {
        "load-loop"
    }

    fn hammer(&self, s: &mut Session, p: &Placement, acts_per_side: u64) -> HammerOutcome {
        for _ in 0..acts_per_side {
            s.activate(p.aggressor_rows[0]);
            s.activate(p.aggressor_rows[1]);
        }
        HammerOutcome::default()
    }
}

/// Frequency-scheduled many-sided pattern: eight equal-rate aggressors at
/// distances ±1/±3/±5/±7 with a rotating phase, so a small TRR table keeps
/// evicting entries before any accumulates to its refresh trigger.
#[derive(Debug)]
pub struct Blacksmith;

impl Hammerer for Blacksmith {
    fn name(&self) -> &'static str {
        "blacksmith"
    }

    fn hammer(&self, s: &mut Session, p: &Placement, acts_per_side: u64) -> HammerOutcome {
        let bank = p.bank;
        let r = i64::from(p.target_row);
        let rows: Vec<_> = [-7i64, -5, -3, -1, 1, 3, 5, 7]
            .iter()
            .map(|d| dram::geometry::RowId {
                bank,
                row: (r + d) as u32,
            })
            .collect();
        for round in 0..acts_per_side {
            let phase = (round as usize) % rows.len();
            for k in 0..rows.len() {
                s.activate(rows[(phase + k) % rows.len()]);
            }
        }
        HammerOutcome::default()
    }
}

/// Half-Double: hammer distance-2 rows hard enough that their *direct*
/// distance-2 coupling stays below the disturbance threshold, plus a
/// sparse distance-1 "dose". Victim-refreshing mitigations turn the dose
/// into a torrent: every refresh of the distance-1 rows is itself an
/// activation one hop from the victim.
#[derive(Debug)]
pub struct HalfDouble;

/// Distance-2 rounds per unit of `acts_per_side` budget.
const HALF_DOUBLE_SCALE: u64 = 15;
/// One explicit distance-1 dose every this many distance-2 rounds.
const DOSE_PERIOD: u64 = 1024;

impl Hammerer for HalfDouble {
    fn name(&self) -> &'static str {
        "half-double"
    }

    fn hammer(&self, s: &mut Session, p: &Placement, acts_per_side: u64) -> HammerOutcome {
        let bank = p.bank;
        let r = p.target_row;
        let far = [
            dram::geometry::RowId { bank, row: r - 2 },
            dram::geometry::RowId { bank, row: r + 2 },
        ];
        for round in 0..acts_per_side * HALF_DOUBLE_SCALE {
            s.activate(far[0]);
            s.activate(far[1]);
            if round % DOSE_PERIOD == 0 {
                s.activate(p.aggressor_rows[0]);
                s.activate(p.aggressor_rows[1]);
            }
        }
        HammerOutcome::default()
    }
}

/// PThammer: implicit hammering purely through page-table walks.
///
/// Each round flushes the TLB and MMU caches and evicts the two aggressor
/// leaf-PTE lines from the data caches, then touches one VA through each
/// aggressor PT. The walk's leaf read misses every cache and reaches DRAM,
/// where the two PTs sit in the same bank one row either side of the
/// victim — so the alternating walks row-conflict and every single
/// aggressor activation is controller-issued, never attacker-issued.
#[derive(Debug)]
pub struct PtHammer;

impl Hammerer for PtHammer {
    fn name(&self) -> &'static str {
        "pthammer"
    }

    fn implicit(&self) -> bool {
        true
    }

    fn hammer(&self, s: &mut Session, p: &Placement, acts_per_side: u64) -> HammerOutcome {
        for _ in 0..acts_per_side {
            let v = s.host_mut();
            v.sys.invalidate_translation_state();
            v.sys.invalidate_line(p.aggressor_leaf_lines[0]);
            v.sys.invalidate_line(p.aggressor_leaf_lines[1]);
            let lo = v.sys.load(p.aggressor_vas[0]);
            let hi = v.sys.load(p.aggressor_vas[1]);
            s.absorb();
            if matches!(lo, AccessOutcome::PteCheckFailed { .. })
                || matches!(hi, AccessOutcome::PteCheckFailed { .. })
            {
                return HammerOutcome { detected: true };
            }
        }
        HammerOutcome::default()
    }
}

/// The campaign's hammerer playbooks, in report order.
pub static HAMMERERS: [&dyn Hammerer; 4] = [&LoadLoop, &Blacksmith, &HalfDouble, &PtHammer];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{massage, PfnAware};
    use crate::rig::Victim;
    use dram::RowhammerConfig;
    use rng::SplitMix64;
    use rowhammer::NoMitigation;

    fn rigged(rh: RowhammerConfig) -> (Session, Placement) {
        let mut v = Victim::build(rh, true);
        let mut rng = SplitMix64::new(42);
        let p = massage(&mut v, &PfnAware, 5, 11, 64, &mut rng);
        v.sys.flush_caches();
        v.sys.invalidate_translation_state();
        for a in v.space.pte_line_addrs() {
            v.sys.invalidate_line(a);
        }
        let s = HammerSession::new(v, Box::new(NoMitigation) as Box<dyn Mitigation>);
        (s, p)
    }

    #[test]
    fn pthammer_issues_zero_explicit_accesses() {
        let (mut s, p) = rigged(RowhammerConfig::immune());
        let out = PtHammer.hammer(&mut s, &p, 50);
        assert!(!out.detected);
        let prov = s.provenance();
        assert_eq!(
            s.attacker_acts(),
            0,
            "PThammer must never touch DRAM itself"
        );
        assert_eq!(prov.explicit, 0);
        assert!(
            prov.walk >= 100,
            "each round must walk both aggressor PTs at DRAM (walk = {})",
            prov.walk
        );
    }

    #[test]
    fn pthammer_walks_row_conflict_in_the_aggressor_bank() {
        let (mut s, p) = rigged(RowhammerConfig::immune());
        let before = s.device().stats().activations;
        PtHammer.hammer(&mut s, &p, 50);
        let acts = s.device().stats().activations - before;
        // Two same-bank, different-row walks per round: every round must
        // contribute at least two genuine (conflict) activations.
        assert!(acts >= 100, "activations = {acts}");
    }

    #[test]
    fn load_loop_flips_the_victim_row_when_unmitigated() {
        let (mut s, p) = rigged(RowhammerConfig {
            threshold: 700.0,
            weak_cells_per_row: 64.0,
            ..RowhammerConfig::default()
        });
        LoadLoop.hammer(&mut s, &p, 2000);
        assert!(
            s.flips_at_distance(p.actual_row, 0) > 0,
            "4000 double-sided activations must flip a 700-threshold row"
        );
    }
}
