//! A deterministic discrete-event model of the serve pipeline.
//!
//! The live TCP path is inherently wall-clock-dependent, so the cacheable
//! `exp serve` artefact runs this model instead: the same seeded Poisson
//! arrivals as the load generator, the same coalescing policy as
//! [`crate::core`] (greedy batches of up to [`MAX_BATCH`] backlogged
//! jobs), and the *real* MAC engine answering every request — only the
//! clock is virtual. Service time follows a fixed documented cost model
//! calibrated against `bench qarma` on the reference machine
//! ([`PER_LINE_NS`], [`BATCH_OVERHEAD_NS`]), so latencies, batch
//! histograms, and throughput are byte-identical across machines and job
//! counts while the MAC verification work stays genuine.
//!
//! The event loop itself is cheap integer arithmetic and runs
//! sequentially; the expensive part — computing every batch's MACs — is
//! sharded across the orchestrator pool by batch ranges, which cannot
//! change the result because batch boundaries are fixed by the plan.

use orchestrator::ThreadPool;
use rng::SplitMix64;
use trace::format::crc32;

use crate::core::{BatchOutcome, Coalescer, Engine, Job, JobKind, MAX_BATCH};
use crate::corpus::CorpusEntry;
use crate::hist::Log2Hist;
use crate::load::{arrival_schedule, request_for};
use crate::proto::Request;

/// Modeled per-line MAC service cost (ns). Calibrated: the batched QARMA
/// kernel verifies one line in ≈640 ns on the reference machine.
pub const PER_LINE_NS: u64 = 650;

/// Modeled fixed per-batch drain overhead (ns): lock hand-off plus kernel
/// entry, the part coalescing amortises.
pub const BATCH_OVERHEAD_NS: u64 = 500;

/// Fraction of requests that are corrupted before being sent, exercising
/// the correct path: 1 in `FAULT_EVERY` requests becomes a `Correct` with
/// one flipped protected bit.
pub const FAULT_EVERY: usize = 1024;

/// One planned service batch: jobs `first..first + len` completing
/// together at `done_ns`.
#[derive(Debug, Clone, Copy)]
struct PlannedBatch {
    first: usize,
    len: usize,
    done_ns: u64,
}

/// Model outcome for one target rate.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The arrival rate fed to the model (requests/second).
    pub target_rps: u64,
    /// Requests simulated.
    pub requests: u64,
    /// Batches drained.
    pub batches: u64,
    /// `batch_hist[s - 1]` counts batches of size `s`.
    pub batch_hist: [u64; MAX_BATCH],
    /// Requests completed per second of virtual time.
    pub achieved_rps: f64,
    /// Modeled latency histogram (ns, arrival to batch completion).
    pub hist: Log2Hist,
    /// Real MAC outcomes across all simulated requests.
    pub outcome: BatchOutcome,
    /// Order-independent fold of every encoded response's CRC — pins the
    /// full response stream, proving the MACs were actually computed.
    pub checksum: u64,
}

impl SimReport {
    /// Mean jobs per batch — the modeled coalescing factor.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// Plans the batch schedule: a single server greedily drains up to
/// [`MAX_BATCH`] backlogged jobs per batch, paying the cost model per
/// batch. Also fills the latency histogram, since latency is pure plan
/// arithmetic.
fn plan_batches(schedule: &[u64], hist: &mut Log2Hist) -> Vec<PlannedBatch> {
    let mut batches = Vec::new();
    let mut free_at = 0u64;
    let mut i = 0usize;
    while i < schedule.len() {
        let start = free_at.max(schedule[i]);
        // Jobs already arrived by `start`, capped at the batch size. Under
        // light load this is 1 (no backlog → no coalescing); under
        // saturation it climbs to MAX_BATCH.
        let mut len = 1usize;
        while len < MAX_BATCH && i + len < schedule.len() && schedule[i + len] <= start {
            len += 1;
        }
        let done = start + BATCH_OVERHEAD_NS + PER_LINE_NS * len as u64;
        for &arrived in &schedule[i..i + len] {
            hist.record((done - arrived).max(1));
        }
        batches.push(PlannedBatch {
            first: i,
            len,
            done_ns: done,
        });
        free_at = done;
        i += len;
    }
    batches
}

/// Builds the job for global request index `i`, injecting a single-bit
/// fault (and switching to a `Correct` request) every [`FAULT_EVERY`]
/// requests.
fn job_for(i: usize, corpus: &[CorpusEntry], embed_every: usize, seed: u64) -> Job {
    let req = request_for(i, corpus, embed_every);
    let (kind, id, addr, mut line) = match req {
        Request::Embed { id, addr, line } => (JobKind::Embed, id, addr, line),
        Request::Verify { id, addr, line } => (JobKind::Verify, id, addr, line),
        _ => unreachable!("request_for only emits embed/verify"),
    };
    let kind = if kind == JobKind::Verify && i % FAULT_EVERY == FAULT_EVERY - 1 {
        // Deterministically flip one protected-region bit.
        let mut r = SplitMix64::new(seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let word = r.gen_range_usize(0, 8);
        let bit = r.gen_range_u64(0, 5); // P/W/U/PWT/PCD: always protected
        line.set_word(word, line.word(word) ^ (1 << bit));
        JobKind::Correct
    } else {
        kind
    };
    Job {
        kind,
        id,
        addr: pagetable::addr::PhysAddr::new(addr),
        line,
    }
}

/// Shard result: MAC outcomes plus the response-stream checksum.
#[derive(Debug, Default, Clone, Copy)]
struct ShardResult {
    outcome: BatchOutcome,
    checksum: u64,
}

/// Simulates one target rate: plan sequentially, compute the real MACs in
/// parallel shards. Deterministic for any `pool` size.
#[must_use]
pub fn simulate_rate(
    engine: &Engine,
    corpus: &[CorpusEntry],
    rate: u64,
    requests: usize,
    seed: u64,
    embed_every: usize,
    pool: &ThreadPool,
) -> SimReport {
    let schedule = arrival_schedule(rate, requests, seed);
    let mut hist = Log2Hist::new();
    let batches = plan_batches(&schedule, &mut hist);

    let mut batch_hist = [0u64; MAX_BATCH];
    for b in &batches {
        batch_hist[b.len - 1] += 1;
    }

    // Shard the MAC work by contiguous batch ranges. The closure must be
    // 'static for the pool, so it owns Arc'd copies of the plan inputs.
    let shards = 16usize.min(batches.len().max(1));
    let per = batches.len().div_ceil(shards.max(1)).max(1);
    let batches = std::sync::Arc::new(batches);
    let shared_corpus: std::sync::Arc<Vec<CorpusEntry>> = std::sync::Arc::new(corpus.to_vec());
    let shard_engine = engine.clone();
    let plan = std::sync::Arc::clone(&batches);
    let results = pool.map_indexed(shards, move |s| {
        let batches = &plan;
        let corpus = &shared_corpus[..];
        let engine = &shard_engine;
        let lo = (s * per).min(batches.len());
        let hi = ((s + 1) * per).min(batches.len());
        let mut coalescer = Coalescer::new();
        let mut jobs: Vec<Job> = Vec::with_capacity(MAX_BATCH);
        let mut scratch = Vec::with_capacity(crate::proto::MAX_BODY);
        let mut res = ShardResult::default();
        for b in &batches[lo..hi] {
            jobs.clear();
            jobs.extend((b.first..b.first + b.len).map(|i| job_for(i, corpus, embed_every, seed)));
            let outcome = coalescer.respond(engine, &jobs, |_, resp| {
                resp.encode(&mut scratch);
                res.checksum = res.checksum.wrapping_add(u64::from(crc32(&scratch)));
            });
            res.outcome.embeds += outcome.embeds;
            res.outcome.verifies += outcome.verifies;
            res.outcome.corrects += outcome.corrects;
            res.outcome.mismatches += outcome.mismatches;
            res.outcome.corrected += outcome.corrected;
            res.outcome.uncorrectable += outcome.uncorrectable;
        }
        res
    });

    let mut outcome = BatchOutcome::default();
    let mut checksum = 0u64;
    for r in &results {
        outcome.embeds += r.outcome.embeds;
        outcome.verifies += r.outcome.verifies;
        outcome.corrects += r.outcome.corrects;
        outcome.mismatches += r.outcome.mismatches;
        outcome.corrected += r.outcome.corrected;
        outcome.uncorrectable += r.outcome.uncorrectable;
        checksum = checksum.wrapping_add(r.checksum);
    }

    let first = schedule.first().copied().unwrap_or(0);
    let last_done = batches.last().map_or(0, |b| b.done_ns);
    #[allow(clippy::cast_precision_loss)]
    let achieved_rps = if last_done > first {
        requests as f64 * 1.0e9 / (last_done - first) as f64
    } else {
        0.0
    };
    SimReport {
        target_rps: rate,
        requests: requests as u64,
        batches: batches.len() as u64,
        batch_hist,
        achieved_rps,
        hist,
        outcome,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptguard::PtGuardConfig;
    use workloads::pte_census::CensusConfig;

    fn setup() -> (Engine, Vec<CorpusEntry>) {
        let engine = Engine::new(&PtGuardConfig::default());
        let corpus = crate::corpus::census_corpus(
            &CensusConfig {
                processes: 4,
                lines_per_process: 32,
                ..CensusConfig::default()
            },
            128,
            &engine,
            &ThreadPool::new(2),
        );
        (engine, corpus)
    }

    #[test]
    fn light_load_does_not_coalesce_saturation_does() {
        let (engine, corpus) = setup();
        let pool = ThreadPool::new(2);
        // 100 k/s: inter-arrival 10 µs >> 1.15 µs service — no backlog.
        let light = simulate_rate(&engine, &corpus, 100_000, 2_000, 7, 8, &pool);
        assert!(light.mean_batch() < 1.1, "light: {}", light.mean_batch());
        // 2 M/s: far beyond scalar capacity (~870 k/s) — deep coalescing.
        let heavy = simulate_rate(&engine, &corpus, 2_000_000, 2_000, 7, 8, &pool);
        assert!(heavy.mean_batch() > 6.0, "heavy: {}", heavy.mean_batch());
        assert!(heavy.hist.percentile(99.0) > light.hist.percentile(99.0));
    }

    #[test]
    fn simulation_is_parallelism_invariant() {
        let (engine, corpus) = setup();
        let a = simulate_rate(&engine, &corpus, 600_000, 3_000, 11, 8, &ThreadPool::new(1));
        let b = simulate_rate(&engine, &corpus, 600_000, 3_000, 11, 8, &ThreadPool::new(8));
        assert_eq!(a.hist, b.hist);
        assert_eq!(a.batch_hist, b.batch_hist);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.outcome.mismatches, b.outcome.mismatches);
    }

    #[test]
    fn verifies_pass_and_injected_faults_get_corrected() {
        let (engine, corpus) = setup();
        let pool = ThreadPool::new(4);
        let r = simulate_rate(&engine, &corpus, 400_000, 3 * FAULT_EVERY, 3, 8, &pool);
        // All mismatches come from the injected faults, and the corrector
        // recovers every single-bit flip.
        assert_eq!(r.outcome.corrects, 3);
        assert_eq!(r.outcome.mismatches, 3);
        assert_eq!(r.outcome.corrected, 3);
        assert_eq!(r.outcome.uncorrectable, 0);
        assert_eq!(
            r.outcome.embeds + r.outcome.verifies + r.outcome.corrects,
            r.requests
        );
    }
}
