//! A log2-bucketed latency histogram with merge and interpolated
//! percentiles.
//!
//! Bucket `b ≥ 1` covers values in `[2^(b-1), 2^b)`; bucket 0 holds exact
//! zeros. Recording is one shift and one increment, so the load generator
//! can record per-request latencies on its receive path without a sort or
//! an allocation, and shards/threads can each keep a private histogram and
//! [`Log2Hist::merge`] at the end. Percentiles interpolate linearly inside
//! the containing bucket (values are assumed uniform within a bucket) and
//! are clamped to the observed `[min, max]`, so `p0`/`p100` are exact.

/// Number of buckets: one per possible `floor(log2(v)) + 1`, plus zero.
pub const BUCKETS: usize = 65;

/// A mergeable log2 histogram of `u64` samples (latencies in ns, batch
/// sizes, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Hist {
    counts: [u64; BUCKETS],
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Hist {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index of `v`: 0 for 0, else `floor(log2(v)) + 1`.
    #[must_use]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (exact, from the running sum).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Folds another histogram into this one. Merging shard-local
    /// histograms is exactly equivalent to recording every sample into one.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `p`-th percentile (`0 ≤ p ≤ 100`), linearly interpolated inside
    /// the containing bucket and clamped to the observed range. Returns 0
    /// for an empty histogram.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn percentile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = (p / 100.0).clamp(0.0, 1.0) * self.total as f64;
        let mut cum = 0u64;
        for (b, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cum + n;
            if rank <= next as f64 {
                // Bucket b covers [lo, hi); interpolate by rank position.
                let lo = if b == 0 { 0u64 } else { 1u64 << (b - 1) };
                let hi = if b == 0 {
                    1u64
                } else if b >= 64 {
                    u64::MAX
                } else {
                    1u64 << b
                };
                let frac = (rank - cum as f64) / n as f64;
                let v = lo as f64 + frac * (hi - lo) as f64;
                return v.clamp(self.min() as f64, self.max as f64);
            }
            cum = next;
        }
        self.max as f64
    }

    /// The raw bucket counts (index = [`Log2Hist::bucket_of`]).
    #[must_use]
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Log2Hist::bucket_of(0), 0);
        assert_eq!(Log2Hist::bucket_of(1), 1);
        assert_eq!(Log2Hist::bucket_of(2), 2);
        assert_eq!(Log2Hist::bucket_of(3), 2);
        assert_eq!(Log2Hist::bucket_of(4), 3);
        assert_eq!(Log2Hist::bucket_of(1023), 10);
        assert_eq!(Log2Hist::bucket_of(1024), 11);
        assert_eq!(Log2Hist::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Log2Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0.0);
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = Log2Hist::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 40);
        assert_eq!(h.mean(), 25.0);
    }

    #[test]
    fn percentiles_interpolate_within_log2_resolution() {
        // 10_000 uniform samples in [1, 10_000]: every percentile estimate
        // must land within its bucket (factor-2 resolution) of the exact
        // answer, and interpolation should do much better than the bucket
        // edge for a uniform fill.
        let mut h = Log2Hist::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (p, exact) in [(50.0, 5000.0), (90.0, 9000.0), (99.0, 9900.0)] {
            let got = h.percentile(p);
            let ratio = got / exact;
            assert!(
                (0.7..=1.45).contains(&ratio),
                "p{p}: got {got}, exact {exact}"
            );
        }
        // Extremes clamp to the observed range exactly.
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(100.0), 10_000.0);
    }

    #[test]
    fn percentiles_are_monotonic() {
        let mut h = Log2Hist::new();
        let mut x = 1u64;
        for _ in 0..5_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            h.record(x >> 40);
        }
        let mut last = 0.0;
        for p in 0..=100 {
            let v = h.percentile(f64::from(p));
            assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let (mut a, mut b, mut all) = (Log2Hist::new(), Log2Hist::new(), Log2Hist::new());
        for v in 0..1_000u64 {
            let sample = v * v % 7_919;
            if v % 2 == 0 {
                a.record(sample);
            } else {
                b.record(sample);
            }
            all.record(sample);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Log2Hist::new();
        h.record(42);
        let snapshot = h.clone();
        h.merge(&Log2Hist::new());
        assert_eq!(h, snapshot);
        let mut e = Log2Hist::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }
}
