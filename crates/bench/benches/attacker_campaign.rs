//! Campaign-engine benches: cost of one massaged placement and of each
//! activation-delivery playbook at small budgets, so regressions in the
//! attacker crate's hot loops (walk-driven hammering above all) show up
//! without running the full `exp attack` grid.

use attacker::alloc::{massage, PfnAware};
use attacker::hammer::{Hammerer, LoadLoop, PtHammer};
use attacker::rig::Victim;
use dram::RowhammerConfig;
use ptguard_bench::harness::Bench;
use rng::SplitMix64;
use rowhammer::{HammerSession, Mitigation, NoMitigation};

fn rig() -> (attacker::hammer::Session, attacker::alloc::Placement) {
    let mut v = Victim::build(RowhammerConfig::immune(), true);
    let mut rng = SplitMix64::new(9);
    let p = massage(&mut v, &PfnAware, 2, 13, 64, &mut rng);
    v.sys.flush_caches();
    v.sys.invalidate_translation_state();
    for a in v.space.pte_line_addrs() {
        v.sys.invalidate_line(a);
    }
    let s = HammerSession::new(v, Box::new(NoMitigation) as Box<dyn Mitigation>);
    (s, p)
}

fn main() {
    let mut g = Bench::group("attacker");

    g.bench("massage_pfn_aware", || {
        let mut v = Victim::build(RowhammerConfig::immune(), true);
        let mut rng = SplitMix64::new(1);
        massage(&mut v, &PfnAware, 1, 7, 64, &mut rng).frames_burned
    });

    let (mut s, p) = rig();
    g.bench("load_loop_200_acts_per_side", || {
        LoadLoop.hammer(&mut s, &p, 200).detected
    });

    let (mut s, p) = rig();
    g.bench("pthammer_50_walk_rounds", || {
        PtHammer.hammer(&mut s, &p, 50).detected
    });
}
