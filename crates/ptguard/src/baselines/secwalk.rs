//! SecWalk-style per-PTE error-detection code (Schilling et al., HOST
//! 2021), as characterised in Section II-E.2 of the PT-Guard paper.
//!
//! SecWalk stores a 25-bit EDC inside each PTE and checks it during the
//! walk. We model the EDC as a 24-bit FlexRay CRC (Hamming distance 6 at
//! this length) plus one overall parity bit — comfortably detecting the
//! ≤4-bit flips the paper credits it with. Two structural limits remain,
//! and both are demonstrated in tests and the `priorwork` experiment:
//!
//! 1. **Bounded distance**: enough simultaneous flips form a codeword and
//!    pass (no cryptographic hardness, just code distance).
//! 2. **Linearity**: `edc(x ⊕ δ) = edc(x) ⊕ edc(δ)`, so *any* δ with
//!    `edc(δ) = 0` is an undetectable tamper for every PTE — an attacker
//!    needs no secret to construct one (the ECCploit observation).

use pagetable::x86_64::mac_protected_mask;

/// Width of the stored code (24-bit CRC + 1 parity bit).
pub const EDC_BITS: u32 = 25;

/// FlexRay CRC-24 polynomial (Koopman: HD 6 for payloads ≪ 2 Kbit).
const POLY24: u64 = 0x5D6DCB;

/// A SecWalk-style EDC checker over the same protected PTE bits PT-Guard
/// MACs (so comparisons are apples-to-apples).
#[derive(Debug, Clone, Copy)]
pub struct SecWalkEdc {
    protected_mask: u64,
}

impl SecWalkEdc {
    /// Creates a checker for a machine with `max_phys_bits` of physical
    /// address space.
    #[must_use]
    pub fn new(max_phys_bits: u32) -> Self {
        Self {
            protected_mask: mac_protected_mask(max_phys_bits),
        }
    }

    /// The protected-bit mask the code covers.
    #[must_use]
    pub fn protected_mask(&self) -> u64 {
        self.protected_mask
    }

    /// Computes the 25-bit EDC of a raw PTE.
    #[must_use]
    pub fn compute(&self, pte: u64) -> u32 {
        let data = pte & self.protected_mask;
        let crc = crc24(data);
        let parity = data.count_ones() & 1;
        (crc << 1) | parity
    }

    /// Whether `stored` matches the EDC of `pte`.
    #[must_use]
    pub fn verify(&self, pte: u64, stored: u32) -> bool {
        self.compute(pte) == stored
    }

    /// Finds a non-zero tamper pattern δ within the protected bits with
    /// `edc(δ) = 0`: XORing it into *any* PTE passes verification. Exists
    /// because the code is linear; returns the lowest-weight pattern found
    /// by a bounded search over shifted generator multiples.
    #[must_use]
    pub fn undetectable_delta(&self) -> Option<u64> {
        // The generator polynomial itself (with its implicit x^24 term and
        // the parity bit satisfied) is a codeword of the CRC; search small
        // multiples/shifts that stay inside the protected mask and have
        // even weight (to satisfy the parity bit).
        for mult in 1u64..64 {
            let base = carryless_mul(POLY24 | (1 << 24), mult);
            for shift in 0..40u32 {
                let delta = base << shift;
                if delta == 0 || delta & !self.protected_mask != 0 {
                    continue;
                }
                if delta.count_ones().is_multiple_of(2) && crc24(delta) == 0 {
                    return Some(delta);
                }
            }
        }
        None
    }
}

/// Bitwise CRC-24 over a 64-bit word (MSB-first).
fn crc24(data: u64) -> u32 {
    let mut reg = 0u64;
    for i in (0..64).rev() {
        let bit = (data >> i) & 1;
        let top = (reg >> 23) & 1;
        reg = (reg << 1) & 0xff_ffff;
        if top ^ bit == 1 {
            reg ^= POLY24;
        }
    }
    reg as u32
}

/// Carry-less (GF(2)) multiplication.
fn carryless_mul(a: u64, b: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..64 {
        if (b >> i) & 1 == 1 {
            acc ^= a << i;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> SecWalkEdc {
        SecWalkEdc::new(40)
    }

    #[test]
    fn clean_pte_verifies() {
        let c = checker();
        let pte = (0x12345u64 << 12) | 0x27;
        let edc = c.compute(pte);
        assert!(edc < (1 << EDC_BITS));
        assert!(c.verify(pte, edc));
    }

    #[test]
    fn detects_all_single_and_double_flips() {
        let c = checker();
        let pte = (0x0abcdu64 << 12) | 0x67 | (1 << 63);
        let edc = c.compute(pte);
        let bits: Vec<u32> = (0..64)
            .filter(|&b| c.protected_mask() >> b & 1 == 1)
            .collect();
        for (i, &b1) in bits.iter().enumerate() {
            assert!(!c.verify(pte ^ (1 << b1), edc), "1-flip at {b1} undetected");
            for &b2 in &bits[i + 1..] {
                assert!(
                    !c.verify(pte ^ (1 << b1) ^ (1 << b2), edc),
                    "2-flip {b1},{b2} undetected"
                );
            }
        }
    }

    #[test]
    fn detects_sampled_triple_and_quad_flips() {
        // Exhaustive 4-flip space is large; sample deterministically.
        let c = checker();
        let pte = (0x00fedu64 << 12) | 0x07;
        let edc = c.compute(pte);
        let bits: Vec<u32> = (0..64)
            .filter(|&b| c.protected_mask() >> b & 1 == 1)
            .collect();
        let n = bits.len();
        let mut checked = 0u64;
        for a in (0..n).step_by(3) {
            for b in (a + 1..n).step_by(2) {
                for d in (b + 1..n).step_by(3) {
                    let t3 = pte ^ (1 << bits[a]) ^ (1 << bits[b]) ^ (1 << bits[d]);
                    assert!(!c.verify(t3, edc), "3-flip undetected");
                    let e = (d + 5) % n;
                    if e > d {
                        let t4 = t3 ^ (1 << bits[e]);
                        assert!(!c.verify(t4, edc), "4-flip undetected");
                    }
                    checked += 1;
                }
            }
        }
        assert!(checked > 300);
    }

    #[test]
    fn linear_codeword_tamper_is_undetected() {
        // The structural weakness: a codeword-shaped δ passes for any PTE.
        let c = checker();
        let delta = c
            .undetectable_delta()
            .expect("a linear code always has codewords");
        assert_ne!(delta, 0);
        assert_eq!(delta & !c.protected_mask(), 0);
        for pte in [(0x12345u64 << 12) | 0x27, 0, (0xfffffu64 << 12) | 0x67] {
            let edc = c.compute(pte);
            assert!(
                c.verify(pte ^ delta, edc),
                "codeword tamper should be invisible to the EDC (δ = {delta:#x})"
            );
        }
        // PT-Guard's MAC rejects the same tamper (see the priorwork
        // experiment for the head-to-head).
    }

    #[test]
    fn edc_is_linear() {
        let c = checker();
        let m = c.protected_mask();
        for (a, b) in [(0x1111u64, 0x2222u64), (0xdead_beef, 0x1234_5678)] {
            let (a, b) = (a & m, b & m);
            assert_eq!(c.compute(a) ^ c.compute(b), c.compute(a ^ b) ^ c.compute(0));
        }
    }
}
