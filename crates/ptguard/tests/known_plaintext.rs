//! The known-plaintext attack of Section IV-G, executed end to end.
//!
//! An attacker *can* learn the MAC of data it chose: write a line shaped
//! like a PTE (pattern bits zeroed) so the controller embeds a MAC, hammer
//! it so the read-time check fails, and receive the line — MAC included —
//! on the data path. The paper argues this leaks nothing exploitable:
//! MACs are address-bound and cryptographic, so the leaked value neither
//! relocates nor transfers to different content.

use pagetable::addr::PhysAddr;
use ptguard::engine::ReadVerdict;
use ptguard::line::Line;
use ptguard::{pattern, PtGuardConfig, PtGuardEngine};

/// Attacker-chosen data that satisfies the 96-bit pattern.
fn attacker_line() -> Line {
    Line::from_words([
        (0xabcd << 12) | 0x27, // looks like a juicy PTE
        (0xabce << 12) | 0x27,
        0x1111,
        0x2222,
        0,
        0,
        0,
        0x3333,
    ])
}

#[test]
fn attacker_can_harvest_a_mac_for_chosen_data() {
    let mut engine = PtGuardEngine::new(PtGuardConfig::default());
    let addr = PhysAddr::new(0x66_0040);
    let line = attacker_line();

    // Step 1: the write path embeds a MAC into the attacker's data.
    let written = engine.process_write(line, addr);
    assert!(written.protected);
    let true_mac = pattern::extract_mac(&written.line);

    // Step 2: a Rowhammer flip makes the data-read check fail, and the line
    // is forwarded unchanged — MAC bits visible to the attacker.
    let mut hammered = written.line;
    hammered.flip_bit(3); // flip a data bit the attacker targets
    let read = engine.process_read(hammered, addr, false);
    assert_eq!(read.verdict, ReadVerdict::Forwarded);
    let leaked = pattern::extract_mac(&read.line);
    assert_eq!(
        leaked, true_mac,
        "the attacker has harvested a (data, MAC) pair"
    );
}

#[test]
fn harvested_mac_does_not_relocate() {
    // The MAC binds the physical address: replaying the harvested
    // (line, MAC) pair at another address never verifies, so the attacker
    // cannot plant "pre-authenticated" PTEs where page tables live.
    let mut engine = PtGuardEngine::new(PtGuardConfig::default());
    let here = PhysAddr::new(0x66_0040);
    let there = PhysAddr::new(0x77_0040);
    let written = engine.process_write(attacker_line(), here);

    let replayed = engine.process_read(written.line, there, true);
    assert_eq!(
        replayed.verdict,
        ReadVerdict::CheckFailed,
        "a relocated (line, MAC) pair must fail the walk check"
    );
}

#[test]
fn harvested_mac_does_not_transfer_to_other_content() {
    // Even knowing MAC(D, A), the attacker cannot authenticate D' ≠ D at A:
    // the paper estimates ~48 of 96 MAC bits would need precise flips.
    let mut engine = PtGuardEngine::new(PtGuardConfig::default());
    let addr = PhysAddr::new(0x66_0040);
    let written = engine.process_write(attacker_line(), addr);
    let harvested = pattern::extract_mac(&written.line);

    // The attacker's desired forgery: a PTE pointing into the page tables.
    let mut forged = Line::from_words([(0x0001 << 12) | 0x67, 0, 0, 0, 0, 0, 0, 0]);
    forged = pattern::embed_mac(&forged, harvested);
    let out = engine.process_read(forged, addr, true);
    assert_eq!(out.verdict, ReadVerdict::CheckFailed);

    // Quantify the paper's "~50% of MAC bits differ" claim.
    let needed = engine.mac_unit().compute(&forged, addr);
    let distance = (needed ^ harvested).count_ones();
    assert!(
        (32..=64).contains(&distance),
        "forgery requires ~48 precise MAC-bit flips, got {distance}"
    );
}

#[test]
fn correction_never_helps_the_forger() {
    // Soft matching widens acceptance to Hamming ≤ 4 and 372 guesses —
    // still astronomically far from the ~48-bit gap above. Check that the
    // corrector does not accidentally bless the forged line either.
    let mut engine = PtGuardEngine::new(PtGuardConfig::default());
    let addr = PhysAddr::new(0x66_0040);
    let written = engine.process_write(attacker_line(), addr);
    let harvested = pattern::extract_mac(&written.line);

    for pfn in [0x1u64, 0x2, 0x40, 0x1000] {
        let mut forged = Line::from_words([(pfn << 12) | 0x67, 0, 0, 0, 0, 0, 0, 0]);
        forged = pattern::embed_mac(&forged, harvested);
        let out = engine.process_read(forged, addr, true);
        assert_eq!(out.verdict, ReadVerdict::CheckFailed, "pfn {pfn:#x}");
    }
}
