//! The windowed in-order driver shared by the single-core and multi-core
//! runners.
//!
//! Both runners execute the same issue/retire discipline against the
//! pipelined [`MemorySystem`]: each instruction advances the front-end
//! clock by a fixed `tick`, each memory op is issued into the pipeline,
//! and when the in-flight window is full the oldest op retires, folding
//! `t_issue + latency × scale` into the in-order retire horizon. They
//! differ only in units — the single-core runner ticks one cycle and keeps
//! the whole latency (`tick = 1`, `scale = 1`); the multi-core runner runs
//! in milli-cycles and keeps the unhidden fraction of each stall
//! (`tick = 1000`, `scale = keep_millis`). Extracting the loop here keeps
//! the two from drifting apart; the identity tests
//! (`tests/pipeline_identity.rs`, `tests/controller_cycles.rs`) pin the
//! extraction bit-for-bit.
//!
//! Issue goes through [`MemorySystem::pipe_issue_event`]: an access that
//! completes synchronously (TLB + cache hit — the overwhelmingly common
//! case) folds into the clock at issue and never occupies the window,
//! while misses suspend and retire through
//! [`MemorySystem::advance_to_next_event`] — the event pump that jumps
//! virtual time to the next DRAM completion instead of stepping and
//! re-scanning. The fold is a running max, so resolving hits at issue
//! time is order-independent and leaves the final cycle count identical.
//! [`WindowedDriver::new_polling`] keeps the pre-event discipline (every
//! op through the op machinery and the completion buffer) as a benchmark
//! control. Both modes issue the same accesses and verify the same MACs
//! against the same DRAM reads; at `mlp > 1` their cycle counts diverge,
//! because the polling discipline composes windows differently (a hit
//! occupies a slot instead of folding at issue), so only the event
//! discipline's totals are pinned.

use std::collections::VecDeque;

use memsys::system::{AccessOutcome, IssueOutcome};
use memsys::MemorySystem;
use pagetable::addr::VirtAddr;

/// The shared issue/retire window over a pipelined [`MemorySystem`].
#[derive(Debug)]
pub(crate) struct WindowedDriver {
    /// In-flight op cap ([`memsys::MemSysConfig::mlp`], clamped to ≥ 1).
    window: usize,
    /// Front-end clock advance per instruction (1 cycle or 1000 mc).
    tick: u64,
    /// Latency multiplier at retire (1, or the unhidden `keep_millis`).
    scale: u64,
    /// Front-end clock (instruction issue), in `tick` units.
    clock: u64,
    /// In-order retire horizon: the max of every retired op's finish time.
    finish_prev: u64,
    /// `(op id, issue time)` of in-flight ops, oldest first.
    inflight: VecDeque<(u64, u64)>,
    /// Completed-but-not-retired outcomes. The window is small (a handful
    /// of ops), so a linear-scanned Vec beats a HashMap on the per-op hot
    /// path — and its capacity is reused for the whole run.
    outcomes: Vec<(u64, AccessOutcome)>,
    /// Benchmark control: issue every op through the op machinery
    /// ([`MemorySystem::pipe_issue`]) instead of resolving synchronous
    /// completions at issue. Identical simulated outcomes, legacy host
    /// cost.
    polling: bool,
}

impl WindowedDriver {
    pub(crate) fn new(window: usize, tick: u64, scale: u64) -> Self {
        Self {
            window: window.max(1),
            tick,
            scale,
            clock: 0,
            finish_prev: 0,
            inflight: VecDeque::new(),
            outcomes: Vec::new(),
            polling: false,
        }
    }

    /// A driver using the pre-event per-op polling discipline (benchmark
    /// control for event-vs-polling host-cost rows).
    pub(crate) fn new_polling(window: usize, tick: u64, scale: u64) -> Self {
        Self {
            polling: true,
            ..Self::new(window, tick, scale)
        }
    }

    /// Advances the front-end clock by one instruction.
    pub(crate) fn tick_instruction(&mut self) {
        self.clock += self.tick;
    }

    /// Issues one memory op; blocks (retiring oldest-first) while the
    /// window is full. Synchronous completions fold into the clock at
    /// issue and never enter the window.
    pub(crate) fn mem_op(&mut self, sys: &mut MemorySystem, va: VirtAddr, write: bool) {
        if self.polling {
            let id = sys.pipe_issue(va, write);
            self.track(sys, id);
            return;
        }
        match sys.pipe_issue_event(va, write) {
            IssueOutcome::Done(out) => {
                debug_assert!(out.is_ok(), "unexpected fault: {out:?}");
                // Folding at issue instead of retire is exact: the fold
                // is a running max over finish times, so its result does
                // not depend on the order hits and misses reach it.
                self.fold(self.clock, out.cycles());
            }
            IssueOutcome::Pending(id) => self.track(sys, id),
        }
    }

    /// Retires every in-flight op (end of a measured region or phase).
    pub(crate) fn drain(&mut self, sys: &mut MemorySystem) {
        while !self.inflight.is_empty() {
            self.retire_one(sys);
        }
    }

    /// Resets both clocks for a fresh measured region (the in-flight
    /// window must already be drained).
    pub(crate) fn reset_clocks(&mut self) {
        debug_assert!(self.inflight.is_empty(), "reset with ops in flight");
        self.clock = 0;
        self.finish_prev = 0;
    }

    /// The run's cycle count so far, in `tick` units.
    pub(crate) fn clock(&self) -> u64 {
        self.clock.max(self.finish_prev)
    }

    fn track(&mut self, sys: &mut MemorySystem, id: u64) {
        self.inflight.push_back((id, self.clock));
        while self.inflight.len() >= self.window {
            self.retire_one(sys);
        }
    }

    fn retire_one(&mut self, sys: &mut MemorySystem) {
        let (id, t_issue) = self
            .inflight
            .pop_front()
            .expect("retire needs an op in flight");
        let out = loop {
            sys.pipe_drain_completed(&mut self.outcomes);
            if let Some(pos) = self.outcomes.iter().position(|(cid, _)| *cid == id) {
                break self.outcomes.swap_remove(pos).1;
            }
            let progressed = sys.advance_to_next_event();
            assert!(
                progressed,
                "event pump stalled: op {id} in flight but no event is scheduled"
            );
        };
        debug_assert!(out.is_ok(), "unexpected fault: {out:?}");
        self.fold(t_issue, out.cycles());
    }

    /// Folds one finished op into the in-order retire horizon. At a
    /// window of 1 this reproduces the blocking `+=` chain exactly:
    /// `finish_prev <= t_issue` always holds, so the max is the sum.
    fn fold(&mut self, t_issue: u64, cycles: u64) {
        let finish = (t_issue + cycles * self.scale).max(self.finish_prev);
        self.finish_prev = finish;
        self.clock = self.clock.max(finish);
    }
}
