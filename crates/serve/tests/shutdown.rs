//! Graceful shutdown: every request accepted before the shutdown frame is
//! answered before the ack — nothing is silently dropped — and the server
//! process-level join returns the drained counters.

use std::collections::BTreeSet;

use orchestrator::ThreadPool;
use serve::client::Client;
use serve::core::Engine;
use serve::corpus::census_corpus;
use serve::load::request_for;
use serve::proto::{Request, Response};
use serve::server::{Server, ServerConfig};
use workloads::pte_census::CensusConfig;

fn corpus() -> Vec<serve::corpus::CorpusEntry> {
    census_corpus(
        &CensusConfig {
            processes: 4,
            lines_per_process: 16,
            ..CensusConfig::default()
        },
        64,
        &Engine::new(&ptguard::PtGuardConfig::default()),
        &ThreadPool::new(2),
    )
}

#[test]
fn shutdown_drains_every_pipelined_request_then_acks() {
    const K: usize = 200;
    let server = Server::start(
        "127.0.0.1:0",
        &ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let corpus = corpus();

    let mut client = Client::connect(addr).expect("connect");
    // Pipeline K requests and the shutdown frame with NO interleaved
    // reads: the drain must still answer all K before acking.
    for i in 0..K {
        client.send(&request_for(i, &corpus, 8)).unwrap();
    }
    client.send(&Request::Shutdown).unwrap();
    client.flush().unwrap();

    let mut ids = BTreeSet::new();
    let mut ack = None;
    while let Some(resp) = client.recv().expect("recv") {
        match resp {
            Response::Embedded { id, .. } | Response::Verified { id, .. } => {
                assert!(
                    ack.is_none(),
                    "response for id {id} arrived AFTER the shutdown ack"
                );
                assert!(ids.insert(id), "duplicate response id {id}");
            }
            Response::ShutdownAck { served, batches } => {
                assert!(batches > 0);
                ack = Some((served, batches));
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    let (served, _) = ack.expect("shutdown ack received");
    assert_eq!(ids.len(), K, "every request answered exactly once");
    assert_eq!(
        ids.iter().copied().collect::<Vec<_>>(),
        (0..K as u64).collect::<Vec<_>>()
    );
    assert_eq!(served, K as u64);

    let stats = server.join();
    assert_eq!(stats.requests, K as u64);
    assert_eq!(stats.embeds + stats.verifies + stats.corrects, K as u64);
}

#[test]
fn requests_in_flight_on_other_connections_are_not_dropped() {
    const K: usize = 120;
    let server = Server::start(
        "127.0.0.1:0",
        &ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let corpus = corpus();

    // Connection A pipelines K requests (and reads nothing yet).
    let mut a = Client::connect(addr).expect("connect A");
    for i in 0..K {
        a.send(&request_for(i, &corpus, 8)).unwrap();
    }
    a.flush().unwrap();

    // Connection B initiates shutdown. Its ack reflects a complete drain.
    let mut b = Client::connect(addr).expect("connect B");
    match b.call(&Request::Shutdown).expect("shutdown call") {
        Response::ShutdownAck { served, .. } => {
            // A's accepted requests are all included in the drained count.
            // (Acceptance raced the drain start: whatever was accepted is
            // exactly what A will receive below.)
            assert!(served <= K as u64);
        }
        other => panic!("unexpected: {other:?}"),
    }

    // A must receive one response per *accepted* request, then EOF — and
    // the count A observes must equal what the server reports it served.
    let mut got = 0u64;
    while let Some(resp) = a.recv().expect("recv A") {
        match resp {
            Response::Embedded { .. } | Response::Verified { .. } => got += 1,
            other => panic!("unexpected: {other:?}"),
        }
    }
    let stats = server.join();
    assert_eq!(got, stats.requests, "answered everything it accepted");
}
