//! Tables I–IV: architectural layouts and the baseline configuration.

use memsys::MemSysConfig;
use pagetable::x86_64::{mac_protected_mask, unused_mask};

use crate::report::Table;

/// Table I: the x86_64 PTE bit layout.
#[must_use]
pub fn table1() -> String {
    let mut t = Table::new(vec!["Bit(s)", "Purpose"]);
    t.row(vec!["0", "Present"]);
    t.row(vec!["1", "Writable"]);
    t.row(vec!["2", "User accessible"]);
    t.row(vec!["3", "Write through"]);
    t.row(vec!["4", "Cache disable"]);
    t.row(vec!["5", "Accessed"]);
    t.row(vec!["6", "Dirty"]);
    t.row(vec!["7", "2 MB page"]);
    t.row(vec!["8", "Global"]);
    t.row(vec!["11:9", "Usable by OS"]);
    t.row(vec!["51:12", "PFN"]);
    t.row(vec!["58:52", "Ignored"]);
    t.row(vec!["62:59", "Memory protection keys"]);
    t.row(vec!["63", "No execute"]);
    format!("Table I: x86_64 page table entry\n{}", t.render())
}

/// Table II: the ARMv8 descriptor bit layout.
#[must_use]
pub fn table2() -> String {
    let mut t = Table::new(vec!["Bit(s)", "Purpose"]);
    t.row(vec!["0", "Valid"]);
    t.row(vec!["1", "Block (HP)"]);
    t.row(vec!["5:2", "Memory attributes"]);
    t.row(vec!["7:6", "Access permissions"]);
    t.row(vec!["9:8", "PFN[39:38]"]);
    t.row(vec!["10", "Accessed"]);
    t.row(vec!["11", "Caching"]);
    t.row(vec!["49:12", "PFN[37:0]"]);
    t.row(vec!["50", "Reserved"]);
    t.row(vec!["51", "Dirty"]);
    t.row(vec!["52", "Contiguous"]);
    t.row(vec!["54:53", "Execute-never"]);
    t.row(vec!["58:55", "Ignored"]);
    t.row(vec!["62:59", "Hardware attributes"]);
    t.row(vec!["63", "Reserved"]);
    format!("Table II: ARMv8 page table entry\n{}", t.render())
}

/// Table III: baseline system configuration (from the live config structs,
/// so the table can never drift from what the simulator actually runs).
#[must_use]
pub fn table3() -> String {
    let c = MemSysConfig::default();
    let mut t = Table::new(vec!["Component", "Configuration"]);
    t.row(vec![
        "Core".to_string(),
        format!("In-order, {} GHz, x86_64 ISA", c.core_ghz),
    ]);
    t.row(vec![
        "TLB".to_string(),
        format!("{} entry, fully associative", c.tlb_entries),
    ]);
    t.row(vec![
        "MMU cache".to_string(),
        format!(
            "{} KB, {}-way",
            c.mmu_cache_entries * 8 / 1024,
            c.mmu_cache_ways
        ),
    ]);
    t.row(vec![
        "L1-D cache".to_string(),
        format!("{} KB, {}-way", c.l1d.size_bytes / 1024, c.l1d.ways),
    ]);
    t.row(vec![
        "L2 / L3 cache".to_string(),
        format!(
            "{} KB / {} MB, {}-way",
            c.l2.size_bytes / 1024,
            c.llc.size_bytes >> 20,
            c.llc.ways
        ),
    ]);
    t.row(vec!["DRAM".to_string(), "4 GB DDR4".to_string()]);
    format!("Table III: baseline system configuration\n{}", t.render())
}

/// Table IV: the bits the MAC protects, for a machine with `m` physical
/// address bits (derived from the live masks).
#[must_use]
pub fn table4(m: u32) -> String {
    let protected = mac_protected_mask(m);
    let unused = unused_mask(m);
    let mut t = Table::new(vec!["Bits", "Description", "Protected?"]);
    t.row(vec!["8:0", "Flags", "Yes (except accessed bit)"]);
    t.row(vec!["11:9", "Programmable", "Yes"]);
    t.row(vec![
        format!("{}:12", m - 1),
        "PFN".to_string(),
        "Yes".to_string(),
    ]);
    if m < 40 {
        t.row(vec![
            format!("39:{m}"),
            "Ignored (zeros)".to_string(),
            "-".to_string(),
        ]);
    }
    t.row(vec!["51:40", "MAC (1/8th portion)", "-"]);
    t.row(vec!["58:52", "Ignored (zeros)", "-"]);
    t.row(vec!["63:59", "Prot. keys / NX flag", "Yes"]);
    format!(
        "Table IV: bits protected by the MAC (M = {m})\n{}\nprotected mask = {protected:#018x} ({} bits)\nunused (pattern) mask = {unused:#018x} ({} bits)\n",
        t.render(),
        protected.count_ones(),
        unused.count_ones(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_nonempty() {
        for s in [table1(), table2(), table3(), table4(40)] {
            assert!(s.len() > 100);
        }
    }

    #[test]
    fn table3_matches_paper_numbers() {
        let s = table3();
        assert!(s.contains("3 GHz"));
        assert!(s.contains("64 entry"));
        assert!(s.contains("8 KB, 4-way"));
        assert!(s.contains("32 KB, 8-way"));
        assert!(s.contains("256 KB / 2 MB, 16-way"));
    }

    #[test]
    fn table4_shows_mac_region() {
        let s = table4(40);
        assert!(s.contains("51:40"));
        assert!(
            s.contains("44 bits"),
            "44 protected bits per PTE at M=40: {s}"
        );
        let s34 = table4(34);
        assert!(s34.contains("39:34"));
    }
}
