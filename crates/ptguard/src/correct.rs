//! Best-effort correction of faulty PTE cachelines (Section VI).
//!
//! On a walk-time MAC mismatch the memory controller *guesses* corrected
//! line values and accepts any guess whose MAC soft-matches (Hamming
//! distance ≤ k) the stored MAC. A strong MAC makes mis-correction as
//! unlikely as a MAC collision, so an accepted guess is the written value.
//!
//! The guess schedule exploits the PTE value locality measured on real
//! systems (Section VI-B): most PTEs are zero, PFNs are often contiguous,
//! and flags are near-uniform within a line:
//!
//! 1. *Soft match*: retry the stored line tolerating ≤ k MAC-bit faults (1 guess).
//! 2. *Flip and check*: flip each protected bit in turn (44 × 8 = 352 guesses for M = 40).
//! 3. *Zero reset*: treat almost-zero PTEs (≤ 4 protected bits set) as zero (1 guess).
//! 4. *Flag majority vote* and 5. *PFN contiguity*, independently and
//!    combined (18 guesses).
//!
//! Maximum ≈ 372 guesses (`G_MAX`), the figure the security model uses.

use crate::line::Line;
use crate::mac::PteMac;
use crate::pattern::extract_mac_for;
use pagetable::addr::PhysAddr;
use pagetable::x86_64::bits;
use pagetable::PTES_PER_LINE;

/// The paper's maximum guess count for x86_64 (Section VI-D):
/// 1 soft-match + 44·8 flip-and-check + 1 zero-reset + 18 vote/contiguity.
pub const G_MAX: u32 = 372;

/// The guess budget for a format with `protected_bits_per_entry` protected
/// bits (x86_64: 44 ⇒ 372; ARMv8: 47 ⇒ 396).
#[must_use]
pub fn guess_budget(protected_bits_per_entry: u32) -> u32 {
    2 + protected_bits_per_entry * 8 + 18
}

/// Which guess strategy produced the accepted correction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorrectionStep {
    /// The stored line soft-matched: only the MAC itself had (≤ k) faults.
    SoftMatch,
    /// A single flipped data bit was found and reverted.
    FlipAndCheck,
    /// Resetting almost-zero PTEs to zero recovered the line.
    ZeroReset,
    /// Flag majority vote and/or PFN-contiguity reconstruction recovered it.
    MajorityAndContiguity,
}

/// The result of a successful correction.
#[derive(Debug, Clone)]
pub struct Corrected {
    /// The corrected line: protected content restored; the MAC region still
    /// holds the (possibly faulty, ≤ k bits) stored MAC.
    pub line: Line,
    /// Guesses spent (≤ [`G_MAX`]).
    pub guesses: u32,
    /// The strategy that succeeded.
    pub step: CorrectionStep,
}

/// The outcome of a correction attempt.
#[derive(Debug, Clone)]
pub enum CorrectionOutcome {
    /// A guess soft-matched.
    Corrected(Corrected),
    /// Every guess failed; the engine must raise a PTE integrity exception.
    Uncorrectable {
        /// Guesses spent before giving up.
        guesses: u32,
    },
}

impl CorrectionOutcome {
    /// Whether correction succeeded.
    #[must_use]
    pub fn is_corrected(&self) -> bool {
        matches!(self, CorrectionOutcome::Corrected(_))
    }
}

/// The hardware correction unit.
#[derive(Debug)]
pub struct Corrector<'a> {
    mac: &'a PteMac,
    k: u32,
    zero_reset_bits: u32,
}

impl<'a> Corrector<'a> {
    /// Creates a corrector using `mac` with soft-match tolerance `k` and
    /// almost-zero cut-off `zero_reset_bits`.
    #[must_use]
    pub fn new(mac: &'a PteMac, k: u32, zero_reset_bits: u32) -> Self {
        Self {
            mac,
            k,
            zero_reset_bits,
        }
    }

    /// Attempts to correct `line` (read from DRAM at `addr`, whose exact MAC
    /// verification failed).
    #[must_use]
    pub fn correct(&self, line: &Line, addr: PhysAddr) -> CorrectionOutcome {
        let stored = extract_mac_for(line, self.mac.format());
        let budget = guess_budget(self.mac.protected_mask().count_ones());
        let mut guesses = 0u32;
        let check = |cand: &Line, guesses: &mut u32| -> bool {
            *guesses += 1;
            self.mac.soft_verify(cand, addr, stored, self.k)
        };

        // Step 1: soft match of the line as-is.
        if check(line, &mut guesses) {
            return CorrectionOutcome::Corrected(Corrected {
                line: *line,
                guesses,
                step: CorrectionStep::SoftMatch,
            });
        }

        // Step 2: flip and check every protected bit.
        let protected = self.mac.protected_mask();
        for word in 0..PTES_PER_LINE {
            for bit in 0..64 {
                if protected & (1u64 << bit) == 0 {
                    continue;
                }
                let mut cand = *line;
                cand.set_word(word, cand.word(word) ^ (1 << bit));
                if check(&cand, &mut guesses) {
                    return CorrectionOutcome::Corrected(Corrected {
                        line: cand,
                        guesses,
                        step: CorrectionStep::FlipAndCheck,
                    });
                }
            }
        }

        // Step 3: reset almost-zero PTEs; subsequent guesses build on this.
        let base = self.reset_almost_zero(line, protected);
        if check(&base, &mut guesses) {
            return CorrectionOutcome::Corrected(Corrected {
                line: base,
                guesses,
                step: CorrectionStep::ZeroReset,
            });
        }

        // Steps 4 + 5: flag majority vote × PFN-contiguity candidates.
        // The in-use PFN mask comes from the format (the ARMv8 PFN field is
        // split; only the contiguous in-use portion takes part in the
        // contiguity reconstruction).
        let pfn_mask = self.mac.pfn_mask();
        let flag_mask = protected & !pfn_mask;
        let nonzero: Vec<usize> = (0..PTES_PER_LINE)
            .filter(|&i| base.word(i) & protected != 0)
            .collect();
        if !nonzero.is_empty() {
            let flag_choices = [None, Some(self.majority_flags(&base, &nonzero, flag_mask))];
            let mut pfn_choices: Vec<Option<Vec<(usize, u64)>>> = vec![None];
            if let Some(v) = self.vote_top_pfn(&base, &nonzero, pfn_mask) {
                pfn_choices.push(Some(v));
            }
            for &b in &nonzero {
                if let Some(v) = self.contiguity_from_base(&base, &nonzero, pfn_mask, b) {
                    pfn_choices.push(Some(v));
                }
            }
            for flags in &flag_choices {
                for pfns in &pfn_choices {
                    if flags.is_none() && pfns.is_none() {
                        continue; // the unmodified base was step 3's guess
                    }
                    let mut cand = base;
                    if let Some(fv) = flags {
                        for &(i, w) in fv {
                            cand.set_word(i, w);
                        }
                    }
                    if let Some(pv) = pfns {
                        for &(i, pfn_bits) in pv {
                            cand.set_word(i, (cand.word(i) & !pfn_mask) | pfn_bits);
                        }
                    }
                    if check(&cand, &mut guesses) {
                        return CorrectionOutcome::Corrected(Corrected {
                            line: cand,
                            guesses,
                            step: CorrectionStep::MajorityAndContiguity,
                        });
                    }
                    if guesses >= budget {
                        return CorrectionOutcome::Uncorrectable { guesses };
                    }
                }
            }
        }

        CorrectionOutcome::Uncorrectable { guesses }
    }

    /// Step 3 helper: clear the protected bits of almost-zero PTEs.
    fn reset_almost_zero(&self, line: &Line, protected: u64) -> Line {
        let mut out = *line;
        for i in 0..PTES_PER_LINE {
            let content = out.word(i) & protected;
            let ones = content.count_ones();
            if ones > 0 && ones <= self.zero_reset_bits {
                out.set_word(i, out.word(i) & !protected);
            }
        }
        out
    }

    /// Step 4 helper: bitwise majority vote of the flag bits over the
    /// non-zero PTEs, applied to each of them.
    fn majority_flags(&self, line: &Line, nonzero: &[usize], flag_mask: u64) -> Vec<(usize, u64)> {
        let mut voted = 0u64;
        for bit in 0..64 {
            let m = 1u64 << bit;
            if flag_mask & m == 0 {
                continue;
            }
            let ones = nonzero.iter().filter(|&&i| line.word(i) & m != 0).count();
            if 2 * ones > nonzero.len() {
                voted |= m;
            }
        }
        nonzero
            .iter()
            .map(|&i| (i, (line.word(i) & !flag_mask) | voted))
            .collect()
    }

    /// Step 5a helper: majority vote over the top PFN bits (all but the low
    /// 8), keeping each entry's own low 8 bits.
    fn vote_top_pfn(
        &self,
        line: &Line,
        nonzero: &[usize],
        pfn_mask: u64,
    ) -> Option<Vec<(usize, u64)>> {
        let low8 = 0xffu64 << bits::PFN_SHIFT;
        let top_mask = pfn_mask & !low8;
        if top_mask == 0 {
            return None;
        }
        let mut voted = 0u64;
        for bit in 0..64 {
            let m = 1u64 << bit;
            if top_mask & m == 0 {
                continue;
            }
            let ones = nonzero.iter().filter(|&&i| line.word(i) & m != 0).count();
            if 2 * ones > nonzero.len() {
                voted |= m;
            }
        }
        Some(
            nonzero
                .iter()
                .map(|&i| (i, voted | (line.word(i) & pfn_mask & low8)))
                .collect(),
        )
    }

    /// Step 5b helper: assume entry `b`'s PFN is correct and reconstruct the
    /// others by contiguity (`pfn_i = pfn_b + (i − b)`).
    fn contiguity_from_base(
        &self,
        line: &Line,
        nonzero: &[usize],
        pfn_mask: u64,
        b: usize,
    ) -> Option<Vec<(usize, u64)>> {
        let pfn_of = |w: u64| (w & pfn_mask) >> bits::PFN_SHIFT;
        let base_pfn = pfn_of(line.word(b)) as i64;
        let max_pfn = (pfn_mask >> bits::PFN_SHIFT) as i64;
        let mut out = Vec::with_capacity(nonzero.len());
        for &i in nonzero {
            let pfn = base_pfn + (i as i64 - b as i64);
            if pfn < 0 || pfn > max_pfn {
                return None;
            }
            out.push((i, (pfn as u64) << bits::PFN_SHIFT));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PtGuardConfig;
    use crate::pattern::embed_mac;

    fn setup() -> PteMac {
        PteMac::from_config(&PtGuardConfig::default())
    }

    /// A PTE line with contiguous PFNs and uniform flags, MAC embedded.
    fn protected_line(mac: &PteMac, addr: PhysAddr) -> Line {
        let flags = 0x8000_0000_0000_0027u64; // P|W|U|A... pattern with NX
        let mut line = Line::ZERO;
        for i in 0..6 {
            line.set_word(i, ((0x1_2340 + i as u64) << 12) | (flags & !bits::PFN_MASK));
        }
        // words 6,7 left zero (zero PTEs)
        embed_mac(&line, mac.compute(&line, addr))
    }

    #[test]
    fn pristine_line_soft_matches_immediately() {
        let mac = setup();
        let addr = PhysAddr::new(0x1000);
        let line = protected_line(&mac, addr);
        let c = Corrector::new(&mac, 4, 4);
        match c.correct(&line, addr) {
            CorrectionOutcome::Corrected(r) => {
                assert_eq!(r.step, CorrectionStep::SoftMatch);
                assert_eq!(r.guesses, 1);
                assert_eq!(r.line, line);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mac_only_faults_soft_match() {
        let mac = setup();
        let addr = PhysAddr::new(0x1000);
        let mut line = protected_line(&mac, addr);
        // Flip 3 bits inside the MAC region of different words.
        line.set_word(0, line.word(0) ^ (1 << 41));
        line.set_word(3, line.word(3) ^ (1 << 45));
        line.set_word(7, line.word(7) ^ (1 << 51));
        let c = Corrector::new(&mac, 4, 4);
        let out = c.correct(&line, addr);
        match out {
            CorrectionOutcome::Corrected(r) => assert_eq!(r.step, CorrectionStep::SoftMatch),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn single_data_bit_flip_corrected() {
        let mac = setup();
        let addr = PhysAddr::new(0x2000);
        let clean = protected_line(&mac, addr);
        for bit in [0usize, 2, 13, 30, 63 + 64 * 3] {
            let mut faulty = clean;
            faulty.flip_bit(bit);
            if faulty == clean {
                continue;
            }
            let c = Corrector::new(&mac, 4, 4);
            match c.correct(&faulty, addr) {
                CorrectionOutcome::Corrected(r) => {
                    assert_eq!(r.line, clean, "bit {bit}");
                    assert!(
                        matches!(r.step, CorrectionStep::FlipAndCheck),
                        "bit {bit}: {:?}",
                        r.step
                    );
                }
                other => panic!("bit {bit}: {other:?}"),
            }
        }
    }

    #[test]
    fn shredded_zero_pte_recovered_by_zero_reset() {
        let mac = setup();
        let addr = PhysAddr::new(0x3000);
        let clean = protected_line(&mac, addr);
        let mut faulty = clean;
        // 3 flips inside the zero PTE at word 6 (protected region bits).
        faulty.set_word(6, faulty.word(6) ^ 0b1001 ^ (1 << 20));
        let c = Corrector::new(&mac, 4, 4);
        match c.correct(&faulty, addr) {
            CorrectionOutcome::Corrected(r) => {
                assert_eq!(r.line, clean);
                assert_eq!(r.step, CorrectionStep::ZeroReset);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flag_faults_recovered_by_majority_vote() {
        let mac = setup();
        let addr = PhysAddr::new(0x4000);
        let clean = protected_line(&mac, addr);
        let mut faulty = clean;
        // Corrupt flags of two different entries (beyond single-flip reach).
        faulty.set_word(1, faulty.word(1) ^ 0b110); // W+U bits of word 1
        faulty.set_word(4, faulty.word(4) ^ (1 << 63)); // NX of word 4
        let c = Corrector::new(&mac, 4, 4);
        match c.correct(&faulty, addr) {
            CorrectionOutcome::Corrected(r) => {
                assert_eq!(r.line, clean);
                assert_eq!(r.step, CorrectionStep::MajorityAndContiguity);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pfn_faults_recovered_by_contiguity() {
        let mac = setup();
        let addr = PhysAddr::new(0x5000);
        let clean = protected_line(&mac, addr);
        let mut faulty = clean;
        // Corrupt the low PFN bits of two entries.
        faulty.set_word(2, faulty.word(2) ^ (0b101 << 12));
        faulty.set_word(5, faulty.word(5) ^ (0b11 << 13));
        let c = Corrector::new(&mac, 4, 4);
        match c.correct(&faulty, addr) {
            CorrectionOutcome::Corrected(r) => {
                assert_eq!(r.line, clean);
                assert_eq!(r.step, CorrectionStep::MajorityAndContiguity);
            }
            other => panic!("{other:?}"),
        }
    }

    /// A line of *non-contiguous* PFNs: correction has no structure to
    /// exploit beyond single-bit search.
    fn noncontiguous_line(mac: &PteMac, addr: PhysAddr) -> Line {
        let mut line = Line::ZERO;
        let pfns = [
            0x0a1_b2c3u64,
            0x571_0000,
            0x123_4567,
            0x0ff_ff00,
            0x800_0001,
            0x2d2_d2d2,
        ];
        for (i, p) in pfns.iter().enumerate() {
            line.set_word(i, (p << 12) | 0x27);
        }
        embed_mac(&line, mac.compute(&line, addr))
    }

    #[test]
    fn scattered_multibit_damage_is_uncorrectable() {
        let mac = setup();
        let addr = PhysAddr::new(0x6000);
        let clean = noncontiguous_line(&mac, addr);
        let mut faulty = clean;
        // Flips in the PFN bits of three *different* non-contiguous entries:
        // not reachable by flip-and-check, zero reset, vote, or contiguity.
        faulty.set_word(0, faulty.word(0) ^ (1 << 13));
        faulty.set_word(1, faulty.word(1) ^ (1 << 14));
        faulty.set_word(2, faulty.word(2) ^ (1 << 15));
        let c = Corrector::new(&mac, 4, 4);
        let out = c.correct(&faulty, addr);
        assert!(!out.is_corrected(), "{out:?}");
        if let CorrectionOutcome::Uncorrectable { guesses } = out {
            assert!(guesses <= G_MAX, "guesses = {guesses}");
        }
    }

    #[test]
    fn guess_budget_matches_section_vi_d_arithmetic() {
        // Section VI-D: 1 soft-match + p·8 flip-and-check + 1 zero-reset +
        // 18 vote/contiguity guesses. x86_64 protects 44 bits per entry
        // (M = 40), ARMv8 protects 47.
        assert_eq!(guess_budget(44), 372);
        assert_eq!(guess_budget(44), G_MAX);
        assert_eq!(guess_budget(47), 396);
        // The budgets agree with the formats' actual protected masks.
        let x86 = PteMac::from_config(&PtGuardConfig::default());
        assert_eq!(x86.protected_mask().count_ones(), 44);
        let armv8 = PteMac::with_format(
            [0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210],
            9,
            qarma::Sbox::Sigma1,
            40,
            crate::format::PteFormat::ArmV8,
        );
        assert_eq!(armv8.protected_mask().count_ones(), 47);
    }

    #[test]
    fn guess_budget_is_within_paper_bound() {
        let mac = setup();
        let addr = PhysAddr::new(0x7000);
        let mut faulty = protected_line(&mac, addr);
        faulty.set_word(0, faulty.word(0) ^ (0b11 << 30));
        faulty.set_word(4, faulty.word(4) ^ (0b11 << 33));
        let c = Corrector::new(&mac, 4, 4);
        match c.correct(&faulty, addr) {
            CorrectionOutcome::Uncorrectable { guesses } => assert!(guesses <= G_MAX),
            CorrectionOutcome::Corrected(r) => assert!(r.guesses <= G_MAX),
        }
    }
}
