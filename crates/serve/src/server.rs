//! The TCP front end: accept loop, per-connection reader/writer threads,
//! and graceful in-band shutdown.
//!
//! Each connection gets a *reader* thread (decodes frames, submits jobs to
//! the shared [`BatchCore`]) and a *writer* thread (flushes responses from
//! the connection's [`Outbox`]). Workers deliver responses by pushing into
//! the owning connection's outbox, so slow clients only back-pressure
//! themselves. The outbox queue holds [`Response`] values (`Copy` lines,
//! no heap), and its `VecDeque` retains capacity, so the steady-state
//! response path allocates nothing.
//!
//! ## Shutdown protocol (in-band)
//!
//! A client sends a `Shutdown` control frame. The receiving reader:
//!
//! 1. calls [`BatchCore::begin_drain`] — new submissions are rejected and
//!    the call blocks until every already-accepted job has been answered
//!    into its outbox (no request is silently dropped);
//! 2. enqueues a `ShutdownAck` carrying the final counters *behind* any
//!    of its own connection's pending responses, so the ack is always the
//!    last frame that client reads;
//! 3. stops the accept loop and half-closes (`Shutdown::Read`) every other
//!    connection, which lets their writers flush all remaining responses
//!    before the sockets close.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ptguard::PtGuardConfig;

use crate::core::{BatchCore, CoreStats, Job, JobKind};
use crate::proto::{read_frame, send_response, Request, Response};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The PT-Guard design point the MAC engine runs.
    pub ptguard: PtGuardConfig,
    /// Worker threads draining the batch core (minimum 1). One worker
    /// makes the response stream deterministic; more add throughput.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            ptguard: PtGuardConfig::default(),
            workers: default_workers(),
        }
    }
}

/// Default worker count: up to 4, bounded by available parallelism.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(4)
}

/// A connection's response queue. Workers push; the writer thread pops,
/// encodes, and flushes.
struct Outbox {
    queue: Mutex<std::collections::VecDeque<Response>>,
    cv: Condvar,
    /// Jobs submitted (or acks enqueued) whose responses the writer has
    /// not yet written. The writer exits once the reader is done and this
    /// reaches zero — i.e. every accepted request has been answered.
    outstanding: AtomicUsize,
    reader_done: AtomicBool,
}

impl Outbox {
    fn new() -> Self {
        Self {
            queue: Mutex::new(std::collections::VecDeque::new()),
            cv: Condvar::new(),
            outstanding: AtomicUsize::new(0),
            reader_done: AtomicBool::new(false),
        }
    }

    fn push(&self, resp: Response) {
        self.queue.lock().expect("outbox lock").push_back(resp);
        self.cv.notify_one();
    }

    fn reader_finished(&self) {
        self.reader_done.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Blocks for the next response; `None` when the connection is done
    /// (reader finished and every accepted job answered and written).
    fn next(&self) -> Option<Response> {
        let mut q = self.queue.lock().expect("outbox lock");
        loop {
            if let Some(r) = q.pop_front() {
                return Some(r);
            }
            if self.reader_done.load(Ordering::SeqCst)
                && self.outstanding.load(Ordering::SeqCst) == 0
            {
                return None;
            }
            q = self.cv.wait(q).expect("outbox lock");
        }
    }
}

struct Shared {
    core: BatchCore<Arc<Outbox>>,
    stop: AtomicBool,
    /// Read-half clones of every live connection, for the shutdown
    /// half-close sweep.
    conns: Mutex<Vec<TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    final_stats: Mutex<Option<CoreStats>>,
    addr: SocketAddr,
}

/// A running `ptguard-serve` instance.
pub struct Server {
    shared: Arc<Shared>,
    accept_thread: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept loop plus `cfg.workers` batch workers.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(addr: impl ToSocketAddrs, cfg: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            core: BatchCore::new(&cfg.ptguard),
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            conn_threads: Mutex::new(Vec::new()),
            final_stats: Mutex::new(None),
            addr: local,
        });

        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    shared.core.worker_loop(|outbox: Arc<Outbox>, resp| {
                        outbox.push(resp);
                    });
                })
            })
            .collect();

        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };

        Ok(Server {
            shared,
            accept_thread,
            workers,
        })
    }

    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Blocks until a client-initiated shutdown completes, then joins all
    /// threads and returns the final service counters.
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    #[must_use]
    pub fn join(self) -> CoreStats {
        self.accept_thread.join().expect("accept thread");
        loop {
            let handle = self.shared.conn_threads.lock().expect("threads lock").pop();
            match handle {
                Some(h) => h.join().expect("connection thread"),
                None => break,
            }
        }
        for w in self.workers {
            w.join().expect("worker thread");
        }
        self.shared
            .final_stats
            .lock()
            .expect("stats lock")
            .take()
            .unwrap_or_else(|| self.shared.core.stats_snapshot())
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break; // the shutdown wake-up connection lands here
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        if let Ok(read_clone) = stream.try_clone() {
            shared.conns.lock().expect("conns lock").push(read_clone);
        }
        let shared_conn = Arc::clone(shared);
        let handle = std::thread::spawn(move || handle_connection(stream, &shared_conn));
        shared
            .conn_threads
            .lock()
            .expect("threads lock")
            .push(handle);
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let outbox = Arc::new(Outbox::new());
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer = {
        let outbox = Arc::clone(&outbox);
        std::thread::spawn(move || writer_loop(writer_stream, &outbox))
    };
    reader_loop(stream, &outbox, shared);
    outbox.reader_finished();
    let _ = writer.join();
}

/// Decodes frames and feeds the batch core until EOF, a protocol error, or
/// shutdown. Malformed input (bad CRC, oversized length, truncation,
/// unknown opcode) terminates only this connection.
fn reader_loop(stream: TcpStream, outbox: &Arc<Outbox>, shared: &Arc<Shared>) {
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::with_capacity(crate::proto::MAX_BODY);
    loop {
        match read_frame(&mut reader, &mut buf) {
            Ok(true) => {}
            Ok(false) | Err(_) => return, // clean EOF or per-connection abort
        }
        let Ok(req) = Request::decode(&buf) else {
            return;
        };
        match req {
            Request::Shutdown => {
                let stats = shared.core.begin_drain();
                outbox.outstanding.fetch_add(1, Ordering::SeqCst);
                outbox.push(Response::ShutdownAck {
                    served: stats.requests,
                    batches: stats.batches,
                });
                *shared.final_stats.lock().expect("stats lock") = Some(stats);
                begin_global_close(shared);
                return;
            }
            Request::Embed { id, addr, line } => {
                if !submit(shared, outbox, JobKind::Embed, id, addr, line) {
                    return;
                }
            }
            Request::Verify { id, addr, line } => {
                if !submit(shared, outbox, JobKind::Verify, id, addr, line) {
                    return;
                }
            }
            Request::Correct { id, addr, line } => {
                if !submit(shared, outbox, JobKind::Correct, id, addr, line) {
                    return;
                }
            }
        }
    }
}

fn submit(
    shared: &Shared,
    outbox: &Arc<Outbox>,
    kind: JobKind,
    id: u64,
    addr: u64,
    line: ptguard::Line,
) -> bool {
    outbox.outstanding.fetch_add(1, Ordering::SeqCst);
    let accepted = shared.core.submit(
        Job {
            kind,
            id,
            addr: pagetable::addr::PhysAddr::new(addr),
            line,
        },
        Arc::clone(outbox),
    );
    if !accepted {
        // Draining: roll the count back and close this connection.
        outbox.outstanding.fetch_sub(1, Ordering::SeqCst);
    }
    accepted
}

/// Stops the accept loop and half-closes every connection's read side so
/// readers see EOF while writers still flush their pending responses.
fn begin_global_close(shared: &Arc<Shared>) {
    shared.stop.store(true, Ordering::SeqCst);
    // Unblock the accept() call.
    let _ = TcpStream::connect(shared.addr);
    for conn in shared.conns.lock().expect("conns lock").drain(..) {
        let _ = conn.shutdown(SockShutdown::Read);
    }
}

fn writer_loop(stream: TcpStream, outbox: &Outbox) {
    let mut writer = BufWriter::new(&stream);
    let mut scratch = Vec::with_capacity(crate::proto::MAX_BODY);
    while let Some(resp) = outbox.next() {
        if send_response(&mut writer, &resp, &mut scratch).is_err() {
            break; // client gone; responses are droppable now
        }
        outbox.outstanding.fetch_sub(1, Ordering::SeqCst);
        // Flush whenever no further response is immediately queued.
        if outbox.queue.lock().expect("outbox lock").is_empty() && writer.flush().is_err() {
            break;
        }
    }
    let _ = writer.flush();
    let _ = stream.shutdown(SockShutdown::Both);
}
