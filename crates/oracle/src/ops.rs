//! Seeded operation streams and the binary divergence-reproducer format.
//!
//! Generators draw from `rng::SplitMix64` and confine addresses to a few
//! sets so evictions, refills-over-stale, and aliasing all happen within a
//! short stream. Reproducers reuse the `trace` crate's binary primitives
//! (magic, varints, CRC-32) so the file format is one family:
//!
//! ```text
//! "PTGT" | version | kind | seed | param | count | ops… | crc32
//! ```

use ptguard::Line;
use rng::SplitMix64;
use trace::format::{crc32, get_varint, put_varint, MAGIC};

/// Reproducer format version (independent of the trace-file version).
pub const REPRO_VERSION: u64 = 1;

/// One operation against a cache model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOp {
    /// Demand lookup.
    Lookup(u64),
    /// Install `(addr, data-seed, dirty)`.
    Fill(u64, u64, bool),
    /// Update `(addr, data-seed, dirty)`.
    Update(u64, u64, bool),
    /// Invalidate without writeback.
    Invalidate(u64),
    /// Drain every dirty line.
    Drain,
}

/// One operation against a TLB model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbOp {
    /// Lookup by virtual page number.
    Lookup(u64),
    /// Insert `(vpn, frame)`.
    Insert(u64, u64),
    /// Invalidate one page.
    Invalidate(u64),
    /// Full shootdown.
    Flush,
}

/// One operation against an MMU-cache model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmuOp {
    /// Lookup by physical entry address.
    Lookup(u64),
    /// Insert `(entry_addr, frame)`.
    Insert(u64, u64),
    /// Invalidate everything.
    Flush,
}

/// One probe of the walker differential (the page tables themselves are
/// regenerated from the reproducer's seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkProbe(
    /// The probed virtual address.
    pub u64,
);

/// Expands a stored data seed into a full pseudorandom line, so op streams
/// stay compact while exercising every line byte.
#[must_use]
pub fn line_from_seed(seed: u64) -> Line {
    let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut words = [0u64; 8];
    for w in &mut words {
        *w = rng.next_u64();
    }
    Line::from_words(words)
}

/// An op that can be serialised into a reproducer file.
pub trait ReproOp: Sized + Clone {
    /// Kind byte in the reproducer header.
    const KIND: u8;
    /// Appends the op's encoding to `buf`.
    fn encode_into(&self, buf: &mut Vec<u8>);
    /// Decodes one op starting at `pos`, advancing it.
    fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Self>;
}

impl ReproOp for CacheOp {
    const KIND: u8 = 1;

    fn encode_into(&self, buf: &mut Vec<u8>) {
        match *self {
            CacheOp::Lookup(a) => {
                buf.push(0);
                put_varint(buf, a);
            }
            CacheOp::Fill(a, d, dirty) => {
                buf.push(if dirty { 2 } else { 1 });
                put_varint(buf, a);
                put_varint(buf, d);
            }
            CacheOp::Update(a, d, dirty) => {
                buf.push(if dirty { 4 } else { 3 });
                put_varint(buf, a);
                put_varint(buf, d);
            }
            CacheOp::Invalidate(a) => {
                buf.push(5);
                put_varint(buf, a);
            }
            CacheOp::Drain => buf.push(6),
        }
    }

    fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let tag = *buf.get(*pos)?;
        *pos += 1;
        Some(match tag {
            0 => CacheOp::Lookup(get_varint(buf, pos)?),
            1 | 2 => CacheOp::Fill(get_varint(buf, pos)?, get_varint(buf, pos)?, tag == 2),
            3 | 4 => CacheOp::Update(get_varint(buf, pos)?, get_varint(buf, pos)?, tag == 4),
            5 => CacheOp::Invalidate(get_varint(buf, pos)?),
            6 => CacheOp::Drain,
            _ => return None,
        })
    }
}

impl ReproOp for TlbOp {
    const KIND: u8 = 2;

    fn encode_into(&self, buf: &mut Vec<u8>) {
        match *self {
            TlbOp::Lookup(v) => {
                buf.push(0);
                put_varint(buf, v);
            }
            TlbOp::Insert(v, f) => {
                buf.push(1);
                put_varint(buf, v);
                put_varint(buf, f);
            }
            TlbOp::Invalidate(v) => {
                buf.push(2);
                put_varint(buf, v);
            }
            TlbOp::Flush => buf.push(3),
        }
    }

    fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let tag = *buf.get(*pos)?;
        *pos += 1;
        Some(match tag {
            0 => TlbOp::Lookup(get_varint(buf, pos)?),
            1 => TlbOp::Insert(get_varint(buf, pos)?, get_varint(buf, pos)?),
            2 => TlbOp::Invalidate(get_varint(buf, pos)?),
            3 => TlbOp::Flush,
            _ => return None,
        })
    }
}

impl ReproOp for MmuOp {
    const KIND: u8 = 3;

    fn encode_into(&self, buf: &mut Vec<u8>) {
        match *self {
            MmuOp::Lookup(a) => {
                buf.push(0);
                put_varint(buf, a);
            }
            MmuOp::Insert(a, f) => {
                buf.push(1);
                put_varint(buf, a);
                put_varint(buf, f);
            }
            MmuOp::Flush => buf.push(2),
        }
    }

    fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let tag = *buf.get(*pos)?;
        *pos += 1;
        Some(match tag {
            0 => MmuOp::Lookup(get_varint(buf, pos)?),
            1 => MmuOp::Insert(get_varint(buf, pos)?, get_varint(buf, pos)?),
            2 => MmuOp::Flush,
            _ => return None,
        })
    }
}

impl ReproOp for WalkProbe {
    const KIND: u8 = 4;

    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.0);
    }

    fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(WalkProbe(get_varint(buf, pos)?))
    }
}

/// Serialises a minimal reproducer: header, ops, CRC-32 trailer. `seed`
/// and `param` let the decoder rebuild seed-derived context (page tables,
/// geometry) that is not part of the op stream itself.
#[must_use]
pub fn encode_repro<T: ReproOp>(seed: u64, param: u64, ops: &[T]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    put_varint(&mut buf, REPRO_VERSION);
    buf.push(T::KIND);
    put_varint(&mut buf, seed);
    put_varint(&mut buf, param);
    put_varint(&mut buf, ops.len() as u64);
    for op in ops {
        op.encode_into(&mut buf);
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Decodes a reproducer produced by [`encode_repro`], returning
/// `(seed, param, ops)`.
///
/// # Errors
///
/// Returns a description of the first structural problem: bad magic, kind
/// mismatch, CRC mismatch, or truncation.
pub fn decode_repro<T: ReproOp>(bytes: &[u8]) -> Result<(u64, u64, Vec<T>), String> {
    if bytes.len() < MAGIC.len() + 4 || bytes[..MAGIC.len()] != MAGIC {
        return Err("bad reproducer magic".to_string());
    }
    let body = &bytes[..bytes.len() - 4];
    let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(body) != stored_crc {
        return Err("reproducer CRC mismatch".to_string());
    }
    let mut pos = MAGIC.len();
    let version = get_varint(body, &mut pos).ok_or("truncated header")?;
    if version != REPRO_VERSION {
        return Err(format!("unsupported reproducer version {version}"));
    }
    let kind = *body.get(pos).ok_or("truncated header")?;
    pos += 1;
    if kind != T::KIND {
        return Err(format!("kind mismatch: file {kind}, expected {}", T::KIND));
    }
    let seed = get_varint(body, &mut pos).ok_or("truncated header")?;
    let param = get_varint(body, &mut pos).ok_or("truncated header")?;
    let count = get_varint(body, &mut pos).ok_or("truncated header")?;
    let mut ops = Vec::with_capacity(count as usize);
    for i in 0..count {
        ops.push(T::decode_from(body, &mut pos).ok_or(format!("truncated op {i}"))?);
    }
    Ok((seed, param, ops))
}

/// Generates a cache op stream confined to `footprint_lines` distinct line
/// addresses (few sets ⇒ constant evictions and refills-over-stale).
#[must_use]
pub fn gen_cache_ops(rng: &mut SplitMix64, n: usize, footprint_lines: u64) -> Vec<CacheOp> {
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let addr = rng.gen_range_u64(0, footprint_lines) * 64 + rng.gen_range_u64(0, 64);
        let data = rng.next_u64();
        ops.push(match rng.gen_range_u64(0, 100) {
            0..=39 => CacheOp::Lookup(addr),
            40..=74 => CacheOp::Fill(addr, data, rng.gen_bool(0.4)),
            75..=89 => CacheOp::Update(addr, data, rng.gen_bool(0.7)),
            90..=96 => CacheOp::Invalidate(addr),
            _ => CacheOp::Drain,
        });
    }
    ops
}

/// Generates a TLB op stream over `footprint_pages` virtual page numbers.
#[must_use]
pub fn gen_tlb_ops(rng: &mut SplitMix64, n: usize, footprint_pages: u64) -> Vec<TlbOp> {
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let vpn = rng.gen_range_u64(0, footprint_pages);
        let frame = rng.gen_range_u64(1, 1 << 20);
        ops.push(match rng.gen_range_u64(0, 100) {
            0..=49 => TlbOp::Lookup(vpn),
            50..=89 => TlbOp::Insert(vpn, frame),
            90..=97 => TlbOp::Invalidate(vpn),
            _ => TlbOp::Flush,
        });
    }
    ops
}

/// Generates an MMU-cache op stream over `footprint_entries` 8-byte
/// entry addresses.
#[must_use]
pub fn gen_mmu_ops(rng: &mut SplitMix64, n: usize, footprint_entries: u64) -> Vec<MmuOp> {
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let entry_addr = rng.gen_range_u64(0, footprint_entries) * 8;
        let frame = rng.gen_range_u64(1, 1 << 20);
        ops.push(match rng.gen_range_u64(0, 100) {
            0..=54 => MmuOp::Lookup(entry_addr),
            55..=97 => MmuOp::Insert(entry_addr, frame),
            _ => MmuOp::Flush,
        });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_roundtrip_cache() {
        let ops = vec![
            CacheOp::Lookup(0x1000),
            CacheOp::Fill(0x40, 7, true),
            CacheOp::Update(0x40, 9, false),
            CacheOp::Invalidate(0x1000),
            CacheOp::Drain,
        ];
        let bytes = encode_repro(42, 512, &ops);
        let (seed, param, back) = decode_repro::<CacheOp>(&bytes).unwrap();
        assert_eq!((seed, param), (42, 512));
        assert_eq!(back, ops);
    }

    #[test]
    fn repro_rejects_corruption_and_kind_mismatch() {
        let bytes = encode_repro(1, 2, &[TlbOp::Flush, TlbOp::Lookup(3)]);
        assert!(decode_repro::<TlbOp>(&bytes).is_ok());
        assert!(decode_repro::<CacheOp>(&bytes)
            .unwrap_err()
            .contains("kind mismatch"));
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        assert!(decode_repro::<TlbOp>(&bad).is_err());
    }

    #[test]
    fn generators_are_deterministic() {
        let a = gen_cache_ops(&mut SplitMix64::new(7), 100, 32);
        let b = gen_cache_ops(&mut SplitMix64::new(7), 100, 32);
        assert_eq!(a, b);
    }
}
