//! Randomized functional-coherence property: whatever the OS/program writes
//! through the cache hierarchy is exactly what it reads back — regardless
//! of evictions, flushes, and PT-Guard's MAC embedding/stripping happening
//! underneath.
//!
//! Formerly proptest-driven; now a deterministic randomized sweep over the
//! in-tree [`rng::SplitMix64`] (24 cases, as before).

use std::collections::HashMap;

use dram::{DramDevice, RowhammerConfig};
use memsys::{MemSysConfig, MemoryController, MemorySystem};
use pagetable::addr::PhysAddr;
use ptguard::{PtGuardConfig, PtGuardEngine};
use rng::SplitMix64;

#[derive(Debug, Clone)]
enum CohOp {
    /// Write a word at (slot, offset) through the hierarchy.
    Write { slot: u8, word: u8, value: u64 },
    /// Read a word back and check it.
    Read { slot: u8, word: u8 },
    /// Drain all dirty lines to DRAM.
    Flush,
    /// Drop a slot's line from every cache level (forces a DRAM re-read
    /// through the PT-Guard strip path). Only sound after a flush, so the
    /// op performs a flush first.
    Evict { slot: u8 },
}

fn random_op(rng: &mut SplitMix64) -> CohOp {
    match rng.gen_range_usize(0, 4) {
        0 => CohOp::Write {
            slot: rng.next_u64() as u8,
            word: rng.gen_range_u64(0, 8) as u8,
            value: rng.next_u64(),
        },
        1 => CohOp::Read {
            slot: rng.next_u64() as u8,
            word: rng.gen_range_u64(0, 8) as u8,
        },
        2 => CohOp::Flush,
        _ => CohOp::Evict {
            slot: rng.next_u64() as u8,
        },
    }
}

fn slot_addr(slot: u8, word: u8) -> PhysAddr {
    // 256 line slots spread across sets and DRAM rows.
    PhysAddr::new(0x10_0000 + u64::from(slot) * 64 * 131 % (1 << 22) + u64::from(word) * 8)
}

fn build(guarded: bool, optimized: bool) -> MemorySystem {
    let device = DramDevice::ddr4_4gb(RowhammerConfig::immune());
    let engine = guarded.then(|| {
        PtGuardEngine::new(if optimized {
            PtGuardConfig::optimized()
        } else {
            PtGuardConfig::default()
        })
    });
    let controller = MemoryController::new(device, engine, 3.0);
    MemorySystem::new(MemSysConfig::default(), controller)
}

#[test]
fn hierarchy_is_functionally_coherent() {
    let mut rng = SplitMix64::new(0xc0e);
    for _case in 0..24 {
        let ops: Vec<CohOp> = {
            let n = rng.gen_range_usize(1, 200);
            (0..n).map(|_| random_op(&mut rng)).collect()
        };
        for (guarded, optimized) in [(false, false), (true, false), (true, true)] {
            let mut sys = build(guarded, optimized);
            let mut reference: HashMap<u64, u64> = HashMap::new();
            for op in &ops {
                match *op {
                    CohOp::Write { slot, word, value } => {
                        let a = slot_addr(slot, word);
                        sys.func_write_u64(a, value);
                        reference.insert(a.as_u64(), value);
                    }
                    CohOp::Read { slot, word } => {
                        let a = slot_addr(slot, word);
                        let expect = reference.get(&a.as_u64()).copied().unwrap_or(0);
                        assert_eq!(
                            sys.func_read_u64(a),
                            expect,
                            "guarded={guarded} optimized={optimized} addr={a:?}"
                        );
                    }
                    CohOp::Flush => sys.flush_caches(),
                    CohOp::Evict { slot } => {
                        sys.flush_caches();
                        sys.invalidate_line(slot_addr(slot, 0));
                    }
                }
            }
            // Final sweep: every word ever written reads back, twice (once
            // possibly from DRAM through the strip path, once from cache).
            sys.flush_caches();
            let addrs: Vec<u64> = reference.keys().copied().collect();
            for a in &addrs {
                sys.invalidate_line(PhysAddr::new(*a));
            }
            for (a, v) in &reference {
                assert_eq!(sys.func_read_u64(PhysAddr::new(*a)), *v);
                assert_eq!(sys.func_read_u64(PhysAddr::new(*a)), *v);
            }
        }
    }
}
