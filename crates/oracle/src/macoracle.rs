//! Bit-level MAC oracle: an independent reimplementation of the PT-Guard
//! line MAC, cross-checked against `ptguard::PteMac`.
//!
//! [`RefMac`] rebuilds the Table IV protected masks by *explicit excluded-
//! bit enumeration* (rather than composing the format's segment tables),
//! assembles chunks byte-by-byte from the raw 64-byte line, and feeds the
//! 16-byte-granular physical address through QARMA-128's tweak input. It
//! also implements the paper's literal `Qᵢ = Q(Cᵢ ⊕ Aᵢ)` formula
//! ([`RefMac::compute_paper_formula`]) so the sweep can demonstrate the
//! chunk-swap aliasing that formula admits — the deviation documented in
//! `ptguard::mac` and DESIGN.md.

use std::sync::Arc;

use orchestrator::pool::ThreadPool;
use pagetable::addr::PhysAddr;
use ptguard::line::Line;
use ptguard::pattern::{embed_mac_for, extract_mac_for};
use ptguard::{PtGuardConfig, PteFormat, PteMac};
use qarma::Qarma128;
use rng::SplitMix64;

/// Mask selecting the low 96 bits — the MAC width.
pub const REF_MAC_MASK: u128 = (1 << 96) - 1;

/// Independent reference implementation of the PTE-line MAC.
#[derive(Debug, Clone)]
pub struct RefMac {
    cipher: Qarma128,
    protected_mask: u64,
    format: PteFormat,
}

/// Builds the per-word protected mask for `format` at `max_phys_bits` by
/// enumerating the *excluded* bits one by one (Table IV), instead of the
/// segment-mask composition `ptguard::format` uses.
#[must_use]
pub fn ref_protected_mask(format: PteFormat, max_phys_bits: u32) -> u64 {
    let mut excluded: Vec<u32> = Vec::new();
    match format {
        PteFormat::X86_64 => {
            // Bit 5: accessed.
            excluded.push(5);
            // Unused PFN bits (MAC region): max_phys_bits−12 PFN bits are in
            // use, so PFN bits above that — PTE bits (max_phys_bits)..52 —
            // are free.
            for bit in max_phys_bits..52 {
                excluded.push(bit);
            }
            // Ignored bits 58:52 (identifier region).
            for bit in 52..=58 {
                excluded.push(bit);
            }
        }
        PteFormat::ArmV8 => {
            // Bit 10: access flag (AF).
            excluded.push(10);
            // The 40-bit PFN lives split: PFN[37:0] at descriptor bits
            // 49:12, PFN[39:38] at bits 9:8. Unused PFN bits for a machine
            // with max_phys_bits of physical space:
            for pfn_bit in (max_phys_bits - 12)..40 {
                let descr_bit = if pfn_bit >= 38 {
                    8 + (pfn_bit - 38)
                } else {
                    12 + pfn_bit
                };
                excluded.push(descr_bit);
            }
            // Ignored bits 58:55 (identifier region).
            for bit in 55..=58 {
                excluded.push(bit);
            }
        }
    }
    let mut mask = u64::MAX;
    for bit in excluded {
        mask &= !(1u64 << bit);
    }
    mask
}

impl RefMac {
    /// Builds the oracle from the same key material as the engine under
    /// test, but with an independently derived protected mask.
    #[must_use]
    pub fn from_config(cfg: &PtGuardConfig) -> Self {
        Self {
            cipher: Qarma128::new(cfg.key, cfg.mac_rounds, cfg.sbox),
            protected_mask: ref_protected_mask(cfg.format, cfg.max_phys_bits),
            format: cfg.format,
        }
    }

    /// The independently enumerated per-word protected mask.
    #[must_use]
    pub fn protected_mask(&self) -> u64 {
        self.protected_mask
    }

    /// The PTE format this oracle covers.
    #[must_use]
    pub fn format(&self) -> PteFormat {
        self.format
    }

    /// Masks `bytes` down to protected content and assembles the four
    /// 16-byte chunks little-endian, byte by byte.
    fn chunks_of(&self, bytes: &[u8; 64]) -> [u128; 4] {
        let mut chunks = [0u128; 4];
        for (i, byte) in bytes.iter().enumerate() {
            let byte_in_word = (i % 8) as u32;
            let mask_byte = (self.protected_mask >> (8 * byte_in_word)) as u8;
            let masked = byte & mask_byte;
            chunks[i / 16] |= u128::from(masked) << (8 * (i % 16));
        }
        chunks
    }

    /// The repository's (tweak-form) MAC: `X = ⊕ᵢ Q(Cᵢ; tweak = Aᵢ)`,
    /// truncated to 96 bits. `addr` may be any byte inside the line.
    #[must_use]
    pub fn compute(&self, bytes: &[u8; 64], addr: u64) -> u128 {
        let base = addr & !63;
        let mut x = 0u128;
        for (i, chunk) in self.chunks_of(bytes).iter().enumerate() {
            let a_i = u128::from(base + 16 * i as u64);
            x ^= self.cipher.encrypt(*chunk, a_i);
        }
        x & REF_MAC_MASK
    }

    /// The paper's literal Section IV-F formula: `X = ⊕ᵢ Q(Cᵢ ⊕ Aᵢ)` with a
    /// fixed tweak. Kept as the buggy foil: it admits chunk-swap aliasing
    /// (XOR two chunks with `Aᵢ ⊕ Aⱼ` and they trade places under the XOR
    /// fold), which the sweep demonstrates and the tweak form must reject.
    #[must_use]
    pub fn compute_paper_formula(&self, bytes: &[u8; 64], addr: u64) -> u128 {
        let base = addr & !63;
        let mut x = 0u128;
        for (i, chunk) in self.chunks_of(bytes).iter().enumerate() {
            let a_i = u128::from(base + 16 * i as u64);
            x ^= self.cipher.encrypt(*chunk ^ a_i, 0);
        }
        x & REF_MAC_MASK
    }
}

/// Aggregate result of one seeded MAC-oracle sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacSweepReport {
    /// Random lines cross-checked `RefMac` vs `PteMac`.
    pub cross_checked: u64,
    /// Cross-check disagreements (must be 0).
    pub mismatches: u64,
    /// embed→extract→verify round-trips attempted.
    pub roundtrips: u64,
    /// Round-trip failures (must be 0).
    pub roundtrip_failures: u64,
    /// Single protected-bit flips tested.
    pub single_flips: u64,
    /// Single flips the MAC failed to detect (must be 0).
    pub single_undetected: u64,
    /// Protected-bit flip pairs tested.
    pub pair_flips: u64,
    /// Flip pairs the MAC failed to detect (must be 0).
    pub pair_undetected: u64,
    /// Chunk-swap alias constructions probed.
    pub alias_probes: u64,
    /// Aliases that collide under the paper's `Q(Cᵢ ⊕ Aᵢ)` formula
    /// (must equal `alias_probes` — the bug the formula admits).
    pub alias_collides_paper: u64,
    /// Aliases the tweak form *accepted* (must be 0).
    pub alias_accepted_tweak: u64,
}

impl MacSweepReport {
    /// True when every invariant held: no mismatches, no round-trip
    /// failures, no undetected flips, every alias collided under the paper
    /// formula and none under the tweak form.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.mismatches == 0
            && self.roundtrip_failures == 0
            && self.single_undetected == 0
            && self.pair_undetected == 0
            && self.alias_collides_paper == self.alias_probes
            && self.alias_accepted_tweak == 0
    }

    /// Sums `other` into `self`. Per-line reports are merged **in line
    /// order**, so a parallel sweep is byte-identical to the serial one.
    pub fn merge(&mut self, other: &MacSweepReport) {
        self.cross_checked += other.cross_checked;
        self.mismatches += other.mismatches;
        self.roundtrips += other.roundtrips;
        self.roundtrip_failures += other.roundtrip_failures;
        self.single_flips += other.single_flips;
        self.single_undetected += other.single_undetected;
        self.pair_flips += other.pair_flips;
        self.pair_undetected += other.pair_undetected;
        self.alias_probes += other.alias_probes;
        self.alias_collides_paper += other.alias_collides_paper;
        self.alias_accepted_tweak += other.alias_accepted_tweak;
    }
}

/// Positions of the protected bits of a full line: `(word, bit)` pairs.
fn protected_positions(mask: u64) -> Vec<(usize, u32)> {
    let mut out = Vec::new();
    for word in 0..8 {
        for bit in 0..64 {
            if mask & (1u64 << bit) != 0 {
                out.push((word, bit));
            }
        }
    }
    out
}

/// Shared read-only state of one sweep: the two MAC implementations plus
/// the protected-bit positions, cloned once and shared across workers.
struct SweepCtx {
    oracle: RefMac,
    fast: PteMac,
    positions: Vec<(usize, u32)>,
}

/// Runs the seeded MAC sweep for `cfg`: cross-checks, round-trips, the
/// exhaustive single-flip sweep, `pair_budget` flip pairs per line
/// (exhaustive when the budget covers all pairs), and the chunk-swap alias
/// probes. Serial entry point; see [`sweep_with_pool`].
#[must_use]
pub fn sweep(cfg: &PtGuardConfig, seed: u64, lines: usize, pair_budget: usize) -> MacSweepReport {
    sweep_with_pool(cfg, seed, lines, pair_budget, None)
}

/// [`sweep`], optionally fanned out over `pool`. Each line draws its seed
/// from the master stream up front and runs independently; per-line reports
/// are merged in line order, so the result is **byte-identical for any
/// worker count** (including `None`).
#[must_use]
pub fn sweep_with_pool(
    cfg: &PtGuardConfig,
    seed: u64,
    lines: usize,
    pair_budget: usize,
    pool: Option<&ThreadPool>,
) -> MacSweepReport {
    let oracle = RefMac::from_config(cfg);
    let positions = protected_positions(oracle.protected_mask());
    let ctx = SweepCtx {
        oracle,
        fast: PteMac::from_config(cfg),
        positions,
    };
    let mut master = SplitMix64::new(seed ^ 0x6d61_635f_7377);
    let line_seeds: Vec<u64> = (0..lines).map(|_| master.next_u64()).collect();

    let mut report = MacSweepReport::default();
    match pool {
        Some(pool) if pool.size() > 1 && lines > 1 => {
            let ctx = Arc::new(ctx);
            let seeds = Arc::new(line_seeds);
            let per_line = {
                let ctx = Arc::clone(&ctx);
                pool.map_indexed(lines, move |i| sweep_line(&ctx, seeds[i], pair_budget))
            };
            for r in &per_line {
                report.merge(r);
            }
        }
        _ => {
            for &s in &line_seeds {
                report.merge(&sweep_line(&ctx, s, pair_budget));
            }
        }
    }
    report
}

/// Sweeps one line (drawn from `line_seed`): the cross-check, round-trip,
/// single/pair flip, and alias probes of the module docs.
fn sweep_line(ctx: &SweepCtx, line_seed: u64, pair_budget: usize) -> MacSweepReport {
    let SweepCtx {
        oracle,
        fast,
        positions,
    } = ctx;
    let mut rng = SplitMix64::new(line_seed);
    let mut report = MacSweepReport::default();
    let total_pairs = positions.len() * (positions.len() - 1) / 2;

    {
        let mut words = [0u64; 8];
        for w in &mut words {
            *w = rng.next_u64();
        }
        let line = Line::from_words(words);
        let addr = PhysAddr::new((rng.next_u64() & 0xff_ffff) << 6);
        let bytes = line.to_bytes();

        // Cross-check: independent byte-level compute vs the engine.
        let ref_mac = oracle.compute(&bytes, addr.as_u64());
        let fast_mac = fast.compute(&line, addr);
        report.cross_checked += 1;
        if ref_mac != fast_mac {
            report.mismatches += 1;
            return report; // downstream assertions would double-count this
        }

        // embed → extract → verify round-trip through `pattern`.
        report.roundtrips += 1;
        let embedded = embed_mac_for(&line, ref_mac, oracle.format());
        let stored = extract_mac_for(&embedded, oracle.format());
        let reverify = oracle.compute(&embedded.to_bytes(), addr.as_u64());
        if stored != ref_mac || reverify != ref_mac {
            report.roundtrip_failures += 1;
        }

        // Exhaustive single protected-bit flips, incremental recompute:
        // only the flipped chunk's cipher call changes.
        let masked_chunks = oracle.chunks_of(&bytes);
        let base = addr.line_addr().as_u64();
        let enc = |c: u128, i: usize| oracle.cipher.encrypt(c, u128::from(base + 16 * i as u64));
        let chunk_encs: Vec<u128> = masked_chunks
            .iter()
            .enumerate()
            .map(|(i, &c)| enc(c, i))
            .collect();
        let flip_one = |word: usize, bit: u32| -> u128 {
            let chunk_i = word / 2;
            let in_chunk_shift = (word % 2) as u32 * 64 + bit;
            let flipped = masked_chunks[chunk_i] ^ (1u128 << in_chunk_shift);
            ref_mac ^ ((chunk_encs[chunk_i] ^ enc(flipped, chunk_i)) & REF_MAC_MASK)
        };
        for &(word, bit) in positions {
            report.single_flips += 1;
            if flip_one(word, bit) == ref_mac {
                report.single_undetected += 1;
            }
        }

        // Flip pairs: exhaustive when the budget allows, else seeded sample.
        let mut pair_check = |a: (usize, u32), b: (usize, u32)| {
            let (ca, cb) = (a.0 / 2, b.0 / 2);
            let sa = (a.0 % 2) as u32 * 64 + a.1;
            let sb = (b.0 % 2) as u32 * 64 + b.1;
            let mac = if ca == cb {
                let flipped = masked_chunks[ca] ^ (1u128 << sa) ^ (1u128 << sb);
                ref_mac ^ ((chunk_encs[ca] ^ enc(flipped, ca)) & REF_MAC_MASK)
            } else {
                let fa = masked_chunks[ca] ^ (1u128 << sa);
                let fb = masked_chunks[cb] ^ (1u128 << sb);
                let delta = chunk_encs[ca] ^ enc(fa, ca) ^ chunk_encs[cb] ^ enc(fb, cb);
                ref_mac ^ (delta & REF_MAC_MASK)
            };
            report.pair_flips += 1;
            if mac == ref_mac {
                report.pair_undetected += 1;
            }
        };
        if pair_budget >= total_pairs {
            for i in 0..positions.len() {
                for j in (i + 1)..positions.len() {
                    pair_check(positions[i], positions[j]);
                }
            }
        } else {
            for _ in 0..pair_budget {
                let i = rng.gen_range_usize(0, positions.len());
                let mut j = rng.gen_range_usize(0, positions.len());
                while j == i {
                    j = rng.gen_range_usize(0, positions.len());
                }
                pair_check(positions[i], positions[j]);
            }
        }

        // Chunk-swap aliases. Only pairs with `Aᵢ ⊕ Aⱼ = 16` — a protected
        // bit in both supported formats — survive the protected-bit
        // masking: (0,1) and (2,3). Pairs whose delta contains bit 5 (the
        // excluded accessed bit, e.g. (1,2) with delta 48) are vacuous.
        for pair in [(0usize, 1usize), (2, 3)] {
            let delta = (16u128 * pair.0 as u128) ^ (16 * pair.1 as u128);
            let mut aliased_chunks = masked_chunks;
            aliased_chunks[pair.0] = masked_chunks[pair.1] ^ delta;
            aliased_chunks[pair.1] = masked_chunks[pair.0] ^ delta;
            let mut aliased_words = [0u64; 8];
            for (ci, chunk) in aliased_chunks.iter().enumerate() {
                aliased_words[2 * ci] = *chunk as u64;
                aliased_words[2 * ci + 1] = (*chunk >> 64) as u64;
            }
            let aliased = Line::from_words(aliased_words).to_bytes();
            report.alias_probes += 1;
            if oracle.compute_paper_formula(&aliased, addr.as_u64())
                == oracle.compute_paper_formula(&bytes, addr.as_u64())
            {
                report.alias_collides_paper += 1;
            }
            if oracle.compute(&aliased, addr.as_u64()) == ref_mac
                || fast.compute(&Line::from_bytes(&aliased), addr) == fast_mac
            {
                report.alias_accepted_tweak += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protected_masks_match_table_iv() {
        assert_eq!(ref_protected_mask(PteFormat::X86_64, 40).count_ones(), 44);
        assert_eq!(ref_protected_mask(PteFormat::ArmV8, 40).count_ones(), 47);
        // And they agree with the segment-composed masks in `ptguard`.
        assert_eq!(
            ref_protected_mask(PteFormat::X86_64, 40),
            PteFormat::X86_64.protected_mask(40)
        );
        assert_eq!(
            ref_protected_mask(PteFormat::ArmV8, 40),
            PteFormat::ArmV8.protected_mask(40)
        );
    }

    #[test]
    fn oracle_agrees_with_engine_on_random_lines() {
        for cfg in [
            PtGuardConfig::default(),
            PtGuardConfig::optimized(),
            PtGuardConfig::armv8(),
        ] {
            let report = sweep(&cfg, 7, 4, 64);
            assert_eq!(report.mismatches, 0, "{:?}", cfg.format);
            assert_eq!(report.roundtrip_failures, 0);
        }
    }

    #[test]
    fn sweep_detects_all_single_and_sampled_pair_flips() {
        let report = sweep(&PtGuardConfig::default(), 11, 3, 500);
        assert!(report.single_flips >= 3 * 44 * 8);
        assert_eq!(report.single_undetected, 0);
        assert_eq!(report.pair_flips, 3 * 500);
        assert_eq!(report.pair_undetected, 0);
    }

    #[test]
    fn paper_formula_admits_chunk_swap_aliasing_and_tweak_form_rejects_it() {
        let report = sweep(&PtGuardConfig::default(), 13, 4, 0);
        assert_eq!(report.alias_probes, 8);
        assert_eq!(
            report.alias_collides_paper, report.alias_probes,
            "the literal Q(C ⊕ A) formula should alias under chunk swap"
        );
        assert_eq!(report.alias_accepted_tweak, 0);
        assert!(report.clean());
    }

    #[test]
    fn exhaustive_pair_sweep_is_clean_for_one_line() {
        // One line, full C(352, 2) = 61 776 pair sweep (quick-scale work).
        let report = sweep(&PtGuardConfig::default(), 17, 1, usize::MAX);
        assert_eq!(report.pair_flips, 352 * 351 / 2);
        assert_eq!(report.pair_undetected, 0);
        assert!(report.clean());
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial_for_several_seeds() {
        // The PR 2 determinism contract: worker count must never leak into
        // results. Three seeds, serial vs 2-worker vs 5-worker pools.
        let cfg = PtGuardConfig::default();
        for seed in [3u64, 0xdead_beef, 0x5eed_5eed] {
            let serial = sweep(&cfg, seed, 6, 300);
            for jobs in [2usize, 5] {
                let pool = ThreadPool::new(jobs);
                let par = sweep_with_pool(&cfg, seed, 6, 300, Some(&pool));
                assert_eq!(par, serial, "seed {seed:#x} jobs {jobs}");
            }
        }
    }
}
