//! Uniform per-bit fault injection (Section VI-F of the paper).
//!
//! The best-effort-correction study flips each bit of a PTE cacheline with a
//! uniform probability `p_flip` (1/128 ≈ worst-case LPDDR4, 1/512 ≈
//! worst-case DDR4 under Rowhammer, per Kim et al. ISCA 2020).

use rng::SplitMix64;

/// Flips each bit of `data` independently with probability `p_flip`.
///
/// Returns the indices of the flipped bits (bit 0 = LSB of `data[0]`).
pub fn flip_bits_uniform(data: &mut [u8], p_flip: f64, rng: &mut SplitMix64) -> Vec<usize> {
    assert!(
        (0.0..=1.0).contains(&p_flip),
        "p_flip must be a probability"
    );
    let mut flipped = Vec::new();
    for bit in 0..data.len() * 8 {
        if rng.gen_bool(p_flip) {
            data[bit / 8] ^= 1 << (bit % 8);
            flipped.push(bit);
        }
    }
    flipped
}

/// Flips exactly the given bit indices of `data`.
pub fn flip_bits_exact(data: &mut [u8], bits: &[usize]) {
    for &bit in bits {
        assert!(bit < data.len() * 8, "bit index {bit} out of range");
        data[bit / 8] ^= 1 << (bit % 8);
    }
}

/// Counts differing bits between two equal-length buffers.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn hamming_distance(a: &[u8], b: &[u8]) -> u32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x ^ y).count_ones())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_flips() {
        let mut rng = SplitMix64::new(1);
        let mut data = [0xa5u8; 64];
        let flips = flip_bits_uniform(&mut data, 0.0, &mut rng);
        assert!(flips.is_empty());
        assert_eq!(data, [0xa5u8; 64]);
    }

    #[test]
    fn unit_probability_flips_everything() {
        let mut rng = SplitMix64::new(1);
        let mut data = [0x00u8; 8];
        let flips = flip_bits_uniform(&mut data, 1.0, &mut rng);
        assert_eq!(flips.len(), 64);
        assert_eq!(data, [0xffu8; 8]);
    }

    #[test]
    fn flip_rate_matches_probability() {
        let mut rng = SplitMix64::new(42);
        let mut total = 0usize;
        let trials = 2000;
        for _ in 0..trials {
            let mut data = [0u8; 64];
            total += flip_bits_uniform(&mut data, 1.0 / 128.0, &mut rng).len();
        }
        let avg = total as f64 / trials as f64;
        let expected = 512.0 / 128.0; // 4 bits per line
        assert!(
            (expected * 0.9..expected * 1.1).contains(&avg),
            "avg = {avg}"
        );
    }

    #[test]
    fn exact_flips_and_hamming() {
        let orig = [0u8; 16];
        let mut data = orig;
        flip_bits_exact(&mut data, &[0, 9, 127]);
        assert_eq!(hamming_distance(&orig, &data), 3);
        assert_eq!(data[0], 1);
        assert_eq!(data[1], 2);
        assert_eq!(data[15], 0x80);
        // Flipping the same bits again restores the original.
        flip_bits_exact(&mut data, &[0, 9, 127]);
        assert_eq!(data, orig);
    }
}
