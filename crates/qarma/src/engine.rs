//! Shared Even-Mansour reflection core used by both QARMA variants.
//!
//! The core operates on the cell-array [`State`] so the two block sizes share
//! one implementation of the round structure; the variant modules own packing
//! and key specialisation.

use crate::cells::{self, State};
use crate::sbox::Sbox;
use crate::{invert_perm, H, LFSR_CELLS, NUM_CELLS, TAU};

/// Variant-independent cipher parameters.
#[derive(Debug, Clone)]
pub(crate) struct Core {
    /// Cell width in bits: 4 (QARMA-64) or 8 (QARMA-128).
    pub cell_bits: u32,
    /// Circulant exponents of the (involutory) MixColumns matrix `M = Q`.
    pub mix_exps: [u32; 4],
    /// Number of forward (and backward) rounds `r`.
    pub rounds: usize,
    /// The selected S-box.
    pub sbox: Sbox,
    /// Round constants `c0..c_{r-1}` as cell arrays.
    pub round_consts: Vec<State>,
    /// Reflection constant α as a cell array.
    pub alpha: State,
}

impl Core {
    fn sub(&self, s: &State) -> State {
        let mut out = *s;
        for c in &mut out {
            *c = if self.cell_bits == 4 {
                self.sbox.apply_nibble(*c)
            } else {
                self.sbox.apply_byte(*c)
            };
        }
        out
    }

    fn sub_inv(&self, s: &State) -> State {
        let inv = self.sbox.inverse_table();
        let mut out = *s;
        for c in &mut out {
            *c = if self.cell_bits == 4 {
                inv[*c as usize]
            } else {
                (inv[(*c >> 4) as usize] << 4) | inv[(*c & 0xf) as usize]
            };
        }
        out
    }

    fn mix(&self, s: &State) -> State {
        cells::mix_columns(s, &self.mix_exps, self.cell_bits)
    }

    fn lfsr_fwd(&self, c: u8) -> u8 {
        if self.cell_bits == 4 {
            cells::lfsr4_forward(c)
        } else {
            cells::lfsr8_forward(c)
        }
    }

    /// One forward tweak update: permutation `h`, then ω on the LFSR cells.
    pub(crate) fn tweak_update(&self, t: &State) -> State {
        let mut out = cells::permute(t, &H);
        for &i in &LFSR_CELLS {
            out[i] = self.lfsr_fwd(out[i]);
        }
        out
    }

    /// Precomputes the tweak sequence `t_0 ..= t_r`.
    fn tweak_schedule(&self, t0: &State) -> Vec<State> {
        let mut ts = Vec::with_capacity(self.rounds + 1);
        ts.push(*t0);
        for _ in 0..self.rounds {
            let next = self.tweak_update(ts.last().expect("non-empty"));
            ts.push(next);
        }
        ts
    }

    /// Derives the reflector key `k1 = M · k0`.
    pub(crate) fn derive_k1(&self, k0: &State) -> State {
        self.mix(k0)
    }

    /// Encrypts one block given the expanded keys (as cell arrays).
    pub(crate) fn encrypt(
        &self,
        p: &State,
        t: &State,
        w0: &State,
        w1: &State,
        k0: &State,
    ) -> State {
        let tau_inv = invert_perm(&TAU);
        let k1 = self.derive_k1(k0);
        let ts = self.tweak_schedule(t);

        let mut s = cells::xor(p, w0);

        // Forward rounds.
        for (i, ti) in ts.iter().enumerate().take(self.rounds) {
            let rk = cells::xor(&cells::xor(k0, ti), &self.round_consts[i]);
            cells::xor_into(&mut s, &rk);
            if i != 0 {
                s = cells::permute(&s, &TAU);
                s = self.mix(&s);
            }
            s = self.sub(&s);
        }

        // Central forward whitening round, keyed w1 ⊕ t_r.
        cells::xor_into(&mut s, &cells::xor(w1, &ts[self.rounds]));
        s = cells::permute(&s, &TAU);
        s = self.mix(&s);
        s = self.sub(&s);

        // Pseudo-reflector: τ, ·Q, ⊕k1, τ⁻¹.
        s = cells::permute(&s, &TAU);
        s = self.mix(&s);
        cells::xor_into(&mut s, &k1);
        s = cells::permute(&s, &tau_inv);

        // Central backward whitening round, keyed w0 ⊕ t_r.
        s = self.sub_inv(&s);
        s = self.mix(&s);
        s = cells::permute(&s, &tau_inv);
        cells::xor_into(&mut s, &cells::xor(w0, &ts[self.rounds]));

        // Backward rounds (reflected tweakey schedule, shifted by α).
        for i in (0..self.rounds).rev() {
            s = self.sub_inv(&s);
            if i != 0 {
                s = self.mix(&s);
                s = cells::permute(&s, &tau_inv);
            }
            let rk = cells::xor(
                &cells::xor(&cells::xor(k0, &self.alpha), &ts[i]),
                &self.round_consts[i],
            );
            cells::xor_into(&mut s, &rk);
        }

        cells::xor(&s, w1)
    }

    /// Decrypts one block: the exact structural inverse of [`Core::encrypt`].
    pub(crate) fn decrypt(
        &self,
        c: &State,
        t: &State,
        w0: &State,
        w1: &State,
        k0: &State,
    ) -> State {
        let tau_inv = invert_perm(&TAU);
        let k1 = self.derive_k1(k0);
        let ts = self.tweak_schedule(t);

        let mut s = cells::xor(c, w1);

        // Invert the backward rounds (apply forward, ascending).
        for (i, ti) in ts.iter().enumerate().take(self.rounds) {
            let rk = cells::xor(
                &cells::xor(&cells::xor(k0, &self.alpha), ti),
                &self.round_consts[i],
            );
            cells::xor_into(&mut s, &rk);
            if i != 0 {
                s = cells::permute(&s, &TAU);
                s = self.mix(&s);
            }
            s = self.sub(&s);
        }

        // Invert the central backward whitening round.
        cells::xor_into(&mut s, &cells::xor(w0, &ts[self.rounds]));
        s = cells::permute(&s, &TAU);
        s = self.mix(&s);
        s = self.sub(&s);

        // Invert the pseudo-reflector.
        s = cells::permute(&s, &TAU);
        cells::xor_into(&mut s, &k1);
        s = self.mix(&s);
        s = cells::permute(&s, &tau_inv);

        // Invert the central forward whitening round.
        s = self.sub_inv(&s);
        s = self.mix(&s);
        s = cells::permute(&s, &tau_inv);
        cells::xor_into(&mut s, &cells::xor(w1, &ts[self.rounds]));

        // Invert the forward rounds (descending).
        for i in (0..self.rounds).rev() {
            s = self.sub_inv(&s);
            if i != 0 {
                s = self.mix(&s);
                s = cells::permute(&s, &tau_inv);
            }
            let rk = cells::xor(&cells::xor(k0, &ts[i]), &self.round_consts[i]);
            cells::xor_into(&mut s, &rk);
        }

        cells::xor(&s, w0)
    }
}

/// The orthomorphism `o(x) = (x ⋙ 1) ⊕ (x ≫ n−1)` used to derive `w1` from
/// `w0`, applied on the packed word. Implemented here for both widths.
pub(crate) fn ortho64(x: u64) -> u64 {
    x.rotate_right(1) ^ (x >> 63)
}

/// 128-bit variant of [`ortho64`].
pub(crate) fn ortho128(x: u128) -> u128 {
    x.rotate_right(1) ^ (x >> 127)
}

#[allow(dead_code)]
fn _assert_cells_bound() {
    // Compile-time sanity: State length matches NUM_CELLS.
    let _: State = [0u8; NUM_CELLS];
}
