//! The multi-channel memory-system artefact.
//!
//! The paper's timing model is single-channel; real DDR4 parts expose 1–4
//! channels whose controllers drain independently. This artefact sweeps
//! channel count × window over every workload profile and reports how much
//! of the memory time channel-level parallelism recovers, how evenly the
//! XOR-folded interleave spreads each profile's line stream, and — in a
//! separate 4-core shared-system scenario — how extra channels relieve the
//! bandwidth contention that MAC verification traffic rides on.
//!
//! `channels = 1` is pinned byte-identical to the single-controller model
//! (the same pinned totals as `tests/controller_cycles.rs`), so the sweep's
//! first column doubles as a regression anchor. Output is byte-identical
//! for any `--jobs` value: cells shard over the pool and merge by index.

use memsys::MemSysConfig;
use orchestrator::ThreadPool;
use ptguard::PtGuardConfig;
use simx::runner::{build_machine_from_source_cfg, run, Protection};
use simx::shared::{SharedConfig, SharedSystem};
use workloads::multiprog::same_bundles;
use workloads::profiles::ALL_WORKLOADS;
use workloads::tracegen::TraceGenerator;

use crate::report::Table;
use crate::Scale;

/// Channel counts swept (1 = the pinned single-controller baseline).
pub const CHANNELS: [usize; 3] = [1, 2, 4];

/// Windows swept per channel count (1 = blocking-identical issue).
pub const WINDOWS: [usize; 2] = [1, 4];

/// One `(workload, window)` measurement across every channel count.
#[derive(Debug, Clone)]
pub struct ChannelRow {
    /// Workload name.
    pub name: String,
    /// Window size.
    pub mlp: usize,
    /// Measured-region cycles per entry of [`CHANNELS`].
    pub cycles: [u64; CHANNELS.len()],
    /// Speedup over the single-channel run, per entry of [`CHANNELS`].
    pub speedup: [f64; CHANNELS.len()],
    /// Interleave balance at the widest channel count: min/max per-channel
    /// DRAM reads (1.0 = perfectly even).
    pub balance: f64,
    /// MAC verification cycles added, summed over channels, per entry of
    /// [`CHANNELS`] — reconciles against the single-channel total.
    pub mac_cycles: [u64; CHANNELS.len()],
    /// Events fired by the pump, per entry of [`CHANNELS`].
    pub events_fired: [u64; CHANNELS.len()],
    /// Mean virtual time skipped per pump advance in ps, per entry of
    /// [`CHANNELS`].
    pub idle_skip_mean_ps: [f64; CHANNELS.len()],
}

/// One channel count of the 4-core shared-system contention scenario.
#[derive(Debug, Clone, Copy)]
pub struct ContentionRow {
    /// Channel count.
    pub channels: usize,
    /// Slowest core's measured cycles, unprotected.
    pub base_cycles: u64,
    /// Slowest core's measured cycles under PT-Guard.
    pub guard_cycles: u64,
    /// PT-Guard slowdown at this channel count.
    pub slowdown: f64,
    /// Fraction of baseline DRAM requests that queued at their channel.
    pub queued_frac: f64,
}

/// The full artefact result.
#[derive(Debug, Clone)]
pub struct ChannelsResult {
    /// The workload sweep, in `ALL_WORKLOADS × WINDOWS` order.
    pub rows: Vec<ChannelRow>,
    /// The shared-system contention scenario, in [`CHANNELS`] order.
    pub contention: Vec<ContentionRow>,
    /// Instructions per core used by the contention scenario.
    pub contention_instrs: u64,
}

impl ChannelsResult {
    /// Deterministic simulated-op volume of the whole artefact.
    #[must_use]
    pub fn sim_ops(&self, instrs: u64) -> u64 {
        let sweep = self.rows.len() as u64 * CHANNELS.len() as u64 * 2 * instrs;
        let shared = self.contention.len() as u64 * 2 * 4 * 2 * self.contention_instrs;
        sweep + shared
    }
}

/// Runs the sweep at seed 0.
#[must_use]
pub fn run_sweep(scale: Scale) -> ChannelsResult {
    run_seeded_jobs(scale, 0, 1)
}

/// [`run_sweep`] with a sweep seed and an inner worker count. Output is
/// byte-identical for every `jobs` value: each `(workload, window)` cell is
/// an independent deterministic job and results merge in index order.
#[must_use]
pub fn run_seeded_jobs(scale: Scale, sweep_seed: u64, jobs: usize) -> ChannelsResult {
    let all: Vec<usize> = (0..ALL_WORKLOADS.len()).collect();
    let rows = sweep_rows(scale, sweep_seed, jobs, &all);
    let contention_instrs = (scale.instructions() / 4).max(1_000);
    let contention = contention_sweep(contention_instrs);
    ChannelsResult {
        rows,
        contention,
        contention_instrs,
    }
}

/// The workload sweep over an explicit profile-index subset (tests use a
/// slice; the artefact uses all 25).
#[allow(clippy::cast_precision_loss)]
fn sweep_rows(scale: Scale, sweep_seed: u64, jobs: usize, workloads: &[usize]) -> Vec<ChannelRow> {
    let instrs = scale.instructions();
    let cells: Vec<(usize, usize)> = workloads
        .iter()
        .flat_map(|&w| (0..WINDOWS.len()).map(move |m| (w, m)))
        .collect();
    let n = cells.len();
    let cell = move |idx: usize| -> ChannelRow {
        let (wi, mi) = cells[idx];
        let p = ALL_WORKLOADS[wi];
        let mlp = WINDOWS[mi];
        let seed = crate::salted(0xc4a + wi as u64, sweep_seed);
        let mut cycles = [0u64; CHANNELS.len()];
        let mut mac_cycles = [0u64; CHANNELS.len()];
        let mut events_fired = [0u64; CHANNELS.len()];
        let mut idle_skip_mean_ps = [0.0f64; CHANNELS.len()];
        let mut balance = 1.0f64;
        for (ci, &channels) in CHANNELS.iter().enumerate() {
            let mem_cfg = MemSysConfig {
                mlp,
                channels,
                ..MemSysConfig::default()
            };
            let mut machine = build_machine_from_source_cfg(
                TraceGenerator::new(p, seed),
                p,
                Protection::PtGuard(PtGuardConfig::default()),
                4,
                mem_cfg,
            );
            let _ = run(&mut machine, instrs); // warm-up, discarded
            let r = run(&mut machine, instrs);
            cycles[ci] = r.cycles;
            let pump = machine.sys.pump_stats();
            events_fired[ci] = pump.events_fired;
            idle_skip_mean_ps[ci] = pump.idle_skip_ps.mean();
            mac_cycles[ci] = (0..machine.sys.channels())
                .map(|c| machine.sys.channel(c).stats().mac_cycles_added)
                .sum();
            if channels == *CHANNELS.last().unwrap() {
                let reads: Vec<u64> = (0..machine.sys.channels())
                    .map(|c| machine.sys.channel(c).stats().reads)
                    .collect();
                let max = reads.iter().copied().max().unwrap_or(0);
                let min = reads.iter().copied().min().unwrap_or(0);
                balance = min as f64 / max.max(1) as f64;
            }
        }
        ChannelRow {
            name: p.name.to_string(),
            mlp,
            cycles,
            speedup: cycles.map(|c| cycles[0] as f64 / c.max(1) as f64),
            balance,
            mac_cycles,
            events_fired,
            idle_skip_mean_ps,
        }
    };
    if jobs == 1 {
        (0..n).map(cell).collect()
    } else {
        ThreadPool::new(jobs).map_indexed(n, cell)
    }
}

/// The MAC-verification bandwidth-contention scenario: four cores running
/// the memory-bound SAME-lbm bundle through one shared system, baseline vs
/// PT-Guard, at each channel count. MAC traffic competes with demand
/// traffic for the channels; spreading lines must shrink both the queueing
/// fraction and the residual MAC slowdown.
#[allow(clippy::cast_precision_loss)]
fn contention_sweep(instructions_per_core: u64) -> Vec<ContentionRow> {
    let bundles = same_bundles(4);
    let lbm = bundles
        .iter()
        .find(|b| b.name == "SAME-lbm")
        .expect("SAME-lbm bundle");
    CHANNELS
        .iter()
        .map(|&channels| {
            let cfg = SharedConfig {
                channels,
                instructions_per_core,
                ..SharedConfig::default()
            };
            let mut base_sys = SharedSystem::new(lbm, None, cfg);
            let base = *base_sys.run().iter().max().expect("cores");
            let queued_frac =
                base_sys.queued_requests as f64 / base_sys.dram_requests.max(1) as f64;
            let guard = *SharedSystem::new(lbm, Some(PtGuardConfig::default()), cfg)
                .run()
                .iter()
                .max()
                .expect("cores");
            ContentionRow {
                channels,
                base_cycles: base,
                guard_cycles: guard,
                slowdown: guard as f64 / base.max(1) as f64 - 1.0,
                queued_frac,
            }
        })
        .collect()
}

/// Renders the artefact.
#[must_use]
pub fn render(r: &ChannelsResult) -> String {
    let mut t = Table::new(vec![
        "workload",
        "mlp",
        "cycles@1ch",
        "cycles@2ch",
        "cycles@4ch",
        "speedup@2",
        "speedup@4",
        "balance@4",
        "events@4",
        "idle-skip@4",
    ]);
    for row in &r.rows {
        t.row(vec![
            row.name.clone(),
            row.mlp.to_string(),
            row.cycles[0].to_string(),
            row.cycles[1].to_string(),
            row.cycles[2].to_string(),
            format!("{:.3}x", row.speedup[1]),
            format!("{:.3}x", row.speedup[2]),
            format!("{:.2}", row.balance),
            row.events_fired[2].to_string(),
            format!("{:.1} ns", row.idle_skip_mean_ps[2] / 1000.0),
        ]);
    }
    let mut c = Table::new(vec![
        "channels",
        "base cycles",
        "guard cycles",
        "slowdown",
        "queued",
    ]);
    for row in &r.contention {
        c.row(vec![
            row.channels.to_string(),
            row.base_cycles.to_string(),
            row.guard_cycles.to_string(),
            format!("{:+.2}%", 100.0 * row.slowdown),
            format!("{:.1}%", 100.0 * row.queued_frac),
        ]);
    }
    format!(
        "Multi-channel memory system: channel-level parallelism under PT-Guard\n{}\nchannels=1 is pinned byte-identical to the single-controller model;\nwider systems spread lines with the XOR-folded interleave and drain\nper-channel controllers merged in integer-picosecond retire order.\nevents@4 / idle-skip@4 report the event pump at the widest channel\ncount: drains fired and mean virtual time jumped per advance.\n\nMAC bandwidth contention (4-core SAME-lbm, {} instrs/core):\n{}",
        t.render(),
        r.contention_instrs,
        c.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_worker_invariant() {
        // A subset keeps the debug-mode test fast; the CI smoke job runs
        // the full 25-profile artefact at jobs 1 vs 8 in release.
        let subset = [1usize, 13]; // mcf (pointer chaser), lbm (streaming)
        let a = sweep_rows(Scale::Trial, 0, 1, &subset);
        let b = sweep_rows(Scale::Trial, 0, 4, &subset);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cycles, y.cycles, "{}@{}", x.name, x.mlp);
            assert_eq!(x.mac_cycles, y.mac_cycles);
        }
        for row in &a {
            // A serial core gains no latency from channel parallelism and
            // pays extra row opens for split streams; the effect stays
            // bounded either way.
            for s in &row.speedup[1..] {
                assert!(
                    (0.8..1.1).contains(s),
                    "{}@{}: channel speedup out of range ({s}x)",
                    row.name,
                    row.mlp
                );
            }
            assert!(row.balance > 0.5, "{}: skewed interleave", row.name);
            for (ci, &fired) in row.events_fired.iter().enumerate() {
                assert!(
                    fired > 0,
                    "{}@{}: pump never fired at ci={ci}",
                    row.name,
                    row.mlp
                );
            }
        }
    }

    #[test]
    fn contention_relaxes_with_channel_count() {
        let rows = contention_sweep(10_000);
        assert_eq!(rows.len(), CHANNELS.len());
        let q: Vec<f64> = rows.iter().map(|c| c.queued_frac).collect();
        assert!(q[2] < q[0], "4 channels must queue less than 1: {q:?}");
        for c in &rows {
            assert!(
                c.slowdown > -0.01 && c.slowdown < 0.1,
                "contention slowdown out of range at {} channels: {}",
                c.channels,
                c.slowdown
            );
        }
    }
}
