//! The full memory hierarchy: TLB → page walk → caches → controller(s).
//!
//! The hierarchy fronts one memory controller per channel
//! ([`MemSysConfig::channels`]): lines are spread across channels by the
//! XOR-folded [`dram::ChannelInterleave`], each channel drains its banked
//! queues independently, and completions retire in deterministic
//! `(integer-ps finish, channel, request id)` order. With one channel every
//! path degenerates — bit for bit — to the single-controller model.

use dram::ChannelInterleave;
use pagetable::addr::{Frame, PhysAddr, VirtAddr};
use pagetable::memory::PhysMem;
use pagetable::x86_64::Pte;
use ptguard::engine::ReadVerdict;
use ptguard::line::Line;
use sched::{EventKey, EventWheel, Log2Hist};

use crate::cache::Cache;
use crate::config::MemSysConfig;
use crate::controller::{ControllerStats, MemoryController};
use crate::mmucache::MmuCache;
use crate::tlb::Tlb;

/// Outcome of a virtual memory access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessOutcome {
    /// The access completed.
    Ok {
        /// End-to-end latency in CPU cycles.
        cycles: u64,
        /// Whether the data access missed the LLC (reached DRAM).
        llc_miss: bool,
    },
    /// A page-table walk hit a tampered PTE line: PT-Guard raised
    /// `PTECheckFailed` and the OS receives an integrity exception.
    PteCheckFailed {
        /// Cycles spent before the fault.
        cycles: u64,
        /// Walk level of the failing access (3 = PML4 … 0 = PT).
        level: usize,
    },
    /// The walk found a non-present or out-of-bounds entry.
    PageFault {
        /// Cycles spent before the fault.
        cycles: u64,
        /// Walk level of the missing entry.
        level: usize,
    },
}

impl AccessOutcome {
    /// Cycles consumed, whatever the outcome.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        match *self {
            AccessOutcome::Ok { cycles, .. }
            | AccessOutcome::PteCheckFailed { cycles, .. }
            | AccessOutcome::PageFault { cycles, .. } => cycles,
        }
    }

    /// Whether the access completed normally.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, AccessOutcome::Ok { .. })
    }
}

/// Hierarchy-level statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemStats {
    /// Demand loads served.
    pub loads: u64,
    /// Demand stores served.
    pub stores: u64,
    /// Page walks performed (TLB misses).
    pub walks: u64,
    /// Demand accesses that missed the LLC.
    pub llc_misses: u64,
    /// Walk accesses that missed the LLC (PTE reads from DRAM).
    pub walk_llc_misses: u64,
    /// PT-Guard integrity exceptions delivered.
    pub integrity_faults: u64,
    /// High-water mark of MSHR entries (distinct outstanding miss lines).
    pub mshr_hwm: u64,
}

/// Result of issuing an access on the event-driven pipeline
/// ([`MemorySystem::pipe_issue_event`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IssueOutcome {
    /// The access completed synchronously (TLB/cache hits all the way, or
    /// an immediate fault) — no event was scheduled and nothing occupies
    /// the in-flight window.
    Done(AccessOutcome),
    /// The access suspended on a DRAM read; its outcome arrives through
    /// [`MemorySystem::pipe_drain_completed`] after
    /// [`MemorySystem::advance_to_next_event`] fires the miss.
    Pending(u64),
}

/// An event scheduled on the system's wheel.
#[derive(Debug, Clone, Copy)]
enum PumpEvent {
    /// Drain the channel's banked queues (armed when the channel's first
    /// outstanding read is enqueued).
    Drain,
}

/// Event-pump counters ([`MemorySystem::pump_stats`]): pure
/// observability, never fed back into timing.
#[derive(Debug, Clone, Default)]
pub struct PumpStats {
    /// Events accepted by the wheel (drain arms).
    pub events_posted: u64,
    /// Events fired by the wheel.
    pub events_fired: u64,
    /// Wheel slot cascades (coarse slots re-filed downward).
    pub wheel_cascades: u64,
    /// Bank-ready completions observed by the pipelined drains (one per
    /// serviced read; counted off the wheel so pure observability never
    /// costs a wheel round-trip).
    pub bank_ready_events: u64,
    /// Distributed-refresh slices (one tREFI each) completed across the
    /// channel devices, blocking interludes included.
    pub refresh_events: u64,
    /// Calls to [`MemorySystem::advance_to_next_event`] that fired events.
    pub advances: u64,
    /// Histogram of virtual time skipped per advance, in ps (the idle
    /// gaps the event pump jumps over instead of polling through).
    pub idle_skip_ps: Log2Hist,
}

/// Result of classifying one walk-level PTE (shared by the blocking walk
/// and the pipelined op state machine).
enum WalkStep {
    /// Non-present or out-of-bounds entry at `level`.
    Fault {
        /// Walk level of the missing entry.
        level: usize,
    },
    /// The walk terminated with this leaf (TLB already updated).
    Leaf(Pte),
    /// Descend into the next table.
    Descend(Frame),
}

/// State of one in-flight pipelined memory operation.
#[derive(Debug, Clone, Copy)]
enum OpState {
    /// Walking: about to access the entry of `table` at `level`.
    Walk {
        /// Current page-table frame.
        table: Frame,
        /// Walk level (3 = PML4 … 0 = PT).
        level: usize,
    },
    /// Suspended on a DRAM read of a walk entry.
    AwaitWalk {
        /// Walk level of the suspended access.
        level: usize,
        /// The entry's physical address.
        entry_addr: PhysAddr,
    },
    /// Translated: about to access the data line through `leaf`.
    Data {
        /// The leaf PTE.
        leaf: Pte,
    },
    /// Suspended on a DRAM read of the data line at `pa`.
    AwaitData {
        /// The data line's physical address.
        pa: PhysAddr,
    },
}

/// One in-flight pipelined memory operation.
#[derive(Debug, Clone, Copy)]
struct PendingOp {
    id: u64,
    va: VirtAddr,
    write: bool,
    cycles: u64,
    state: OpState,
}

/// One outstanding miss line: the controller request plus every op waiting
/// on it. The primary waiter installs the fill; later waiters merged into
/// the same line and only collect the latency. Request ids are
/// per-controller monotonic counters, so the entry is keyed by
/// `(channel, req_id)` — ids alone collide across channels.
///
/// The primary is stored inline: almost every miss has exactly one waiter,
/// and an empty `Vec` does not allocate, so the common suspend/resolve
/// cycle is allocation-free.
#[derive(Debug)]
struct MshrEntry {
    channel: u32,
    req_id: u64,
    line_addr: u64,
    is_pte: bool,
    /// The op that installs the fill.
    primary: u64,
    /// Ops merged into the line after the primary (latency only).
    merged: Vec<u64>,
}

/// The single-core memory system of Table III (N-channel capable).
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MemSysConfig,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    tlb: Tlb,
    mmu: MmuCache,
    /// Channel 0's memory controller (public for device access in
    /// experiments, which run single-channel; use
    /// [`MemorySystem::channel`] to address other channels).
    pub controller: MemoryController,
    /// Controllers of channels `1..N` (empty in the single-channel
    /// configuration, so existing call sites see exactly one controller).
    aux: Vec<MemoryController>,
    /// The address → channel function shared by every access path.
    interleave: ChannelInterleave,
    root: Frame,
    max_phys_bits: u32,
    stats: SystemStats,
    /// Outstanding-miss file of the pipelined path.
    mshr: Vec<MshrEntry>,
    /// Ops suspended on an MSHR entry.
    pending: Vec<PendingOp>,
    /// Ops that finished since the last [`MemorySystem::pipe_take_completed`].
    completed: Vec<(u64, AccessOutcome)>,
    /// Reusable buffer for one channel's drain in [`MemorySystem::pipe_step`].
    drain_buf: Vec<(u64, crate::controller::DramRead)>,
    /// Reusable channel-tagged retire buffer for the cross-channel merge.
    merge_buf: Vec<(u32, u64, crate::controller::DramRead)>,
    next_op_id: u64,
    /// The event engine: per-channel drain arms, popped in
    /// `(ps, channel, id)` order. Per-channel device clocks are
    /// independent latency accumulators, so the wheel's `now` is a
    /// max-progress frontier; lagging channels clamp forward
    /// (deterministically) when they arm.
    wheel: EventWheel<PumpEvent>,
    /// Whether a [`PumpEvent::Drain`] is scheduled for each channel.
    armed: Vec<bool>,
    /// Pump observability counters (the wheel's own posted/fired/cascade
    /// counts live in the wheel; see [`MemorySystem::pump_stats`]).
    pump: PumpStats,
}

impl MemorySystem {
    /// Builds the hierarchy over a single `controller`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.channels != 1` — a multi-channel configuration needs
    /// one controller per channel; use [`MemorySystem::new_multi`].
    #[must_use]
    pub fn new(cfg: MemSysConfig, controller: MemoryController) -> Self {
        assert_eq!(
            cfg.channels, 1,
            "MemorySystem::new is single-channel; use new_multi for {} channels",
            cfg.channels
        );
        Self::new_multi(cfg, vec![controller])
    }

    /// Builds the hierarchy over one controller per channel. Channel `i` of
    /// the [`ChannelInterleave`] maps to `controllers[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `controllers.len() != cfg.channels` or the channel count
    /// is not a power of two.
    #[must_use]
    pub fn new_multi(cfg: MemSysConfig, mut controllers: Vec<MemoryController>) -> Self {
        assert_eq!(
            controllers.len(),
            cfg.channels,
            "need one controller per channel"
        );
        let interleave = ChannelInterleave::new(u32::try_from(cfg.channels).expect("channels"));
        let controller = controllers.remove(0);
        Self {
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            llc: Cache::new(cfg.llc),
            tlb: Tlb::new(cfg.tlb_entries),
            mmu: MmuCache::new(
                cfg.mmu_cache_entries,
                cfg.mmu_cache_ways,
                cfg.mmu_cache_latency_cycles,
            ),
            controller,
            aux: controllers,
            interleave,
            root: Frame(0),
            max_phys_bits: 40,
            stats: SystemStats::default(),
            mshr: Vec::new(),
            pending: Vec::new(),
            completed: Vec::new(),
            drain_buf: Vec::new(),
            merge_buf: Vec::new(),
            next_op_id: 0,
            wheel: EventWheel::new(),
            armed: vec![false; cfg.channels],
            pump: PumpStats::default(),
            cfg,
        }
    }

    /// Number of memory channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        1 + self.aux.len()
    }

    /// The controller of channel `i`.
    #[must_use]
    pub fn channel(&self, i: usize) -> &MemoryController {
        if i == 0 {
            &self.controller
        } else {
            &self.aux[i - 1]
        }
    }

    /// Mutable access to the controller of channel `i`.
    pub fn channel_mut(&mut self, i: usize) -> &mut MemoryController {
        if i == 0 {
            &mut self.controller
        } else {
            &mut self.aux[i - 1]
        }
    }

    /// Aggregate controller statistics: the fold of every channel's stats
    /// through [`ControllerStats::absorb`] (counters sum, high-water marks
    /// take the max). Identical to `controller.stats()` at one channel.
    #[must_use]
    pub fn controller_stats_total(&self) -> ControllerStats {
        let mut total = self.controller.stats();
        for c in &self.aux {
            total.absorb(&c.stats());
        }
        total
    }

    /// The channel serving `addr`.
    fn chan_of(&self, addr: PhysAddr) -> usize {
        self.interleave.channel_of(addr) as usize
    }

    /// The controller serving `addr`.
    fn ctrl_for(&mut self, addr: PhysAddr) -> &mut MemoryController {
        let c = self.chan_of(addr);
        self.channel_mut(c)
    }

    /// Whether any channel has queued reads.
    fn any_queued_reads(&self) -> bool {
        self.controller.has_queued_reads()
            || self.aux.iter().any(MemoryController::has_queued_reads)
    }

    /// Total reads queued across all channels (flush diagnostics).
    fn queued_reads_total(&self) -> usize {
        self.controller.queued_reads()
            + self
                .aux
                .iter()
                .map(MemoryController::queued_reads)
                .sum::<usize>()
    }

    /// The system's configuration.
    #[must_use]
    pub fn config(&self) -> &MemSysConfig {
        &self.cfg
    }

    /// Points the walker at a page-table root (CR3) for a machine with
    /// `max_phys_bits` of physical address space.
    pub fn set_root(&mut self, root: Frame, max_phys_bits: u32) {
        self.root = root;
        self.max_phys_bits = max_phys_bits;
        self.tlb.flush();
        self.mmu.flush();
    }

    /// Statistics.
    #[must_use]
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Consumes the hierarchy, returning its memory controller — the DRAM
    /// contents (page tables included) travel with it. Call
    /// [`MemorySystem::flush_caches`] first so no dirty lines are lost.
    ///
    /// # Panics
    ///
    /// Panics on a multi-channel system: the DRAM contents are spread
    /// across the channels, so no single controller carries them.
    #[must_use]
    pub fn into_controller(self) -> MemoryController {
        assert!(
            self.aux.is_empty(),
            "into_controller is single-channel; a multi-channel system's store is interleaved"
        );
        self.controller
    }

    /// Consumes the hierarchy, returning every channel's controller in
    /// channel order — the multi-channel counterpart of
    /// [`MemorySystem::into_controller`]. Call
    /// [`MemorySystem::flush_caches`] first so no dirty lines are lost.
    #[must_use]
    pub fn into_controllers(self) -> Vec<MemoryController> {
        let mut v = vec![self.controller];
        v.extend(self.aux);
        v
    }

    /// The TLB (for assertions in tests).
    #[must_use]
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// MMU-cache statistics.
    #[must_use]
    pub fn mmu_stats(&self) -> crate::mmucache::MmuCacheStats {
        self.mmu.stats()
    }

    /// Per-level cache statistics `(L1D, L2, LLC)`.
    #[must_use]
    pub fn cache_stats(
        &self,
    ) -> (
        crate::cache::CacheStats,
        crate::cache::CacheStats,
        crate::cache::CacheStats,
    ) {
        (self.l1d.stats(), self.l2.stats(), self.llc.stats())
    }

    /// TLB statistics.
    #[must_use]
    pub fn tlb_stats(&self) -> crate::tlb::TlbStats {
        self.tlb.stats()
    }

    /// A demand load from virtual address `va`.
    pub fn load(&mut self, va: VirtAddr) -> AccessOutcome {
        self.stats.loads += 1;
        self.access(va, false)
    }

    /// A demand store to virtual address `va`.
    pub fn store(&mut self, va: VirtAddr) -> AccessOutcome {
        self.stats.stores += 1;
        self.access(va, true)
    }

    fn access(&mut self, va: VirtAddr, write: bool) -> AccessOutcome {
        let mut cycles = self.cfg.tlb_latency_cycles;
        let leaf = match self.tlb.lookup(va.vpn()) {
            Some(pte) => pte,
            None => {
                self.stats.walks += 1;
                match self.walk(va, &mut cycles) {
                    Ok(pte) => pte,
                    Err(out) => return out,
                }
            }
        };
        let pa = leaf.target(va.page_offset());
        let (_, c, llc_miss, _) = self.line_access(pa, write, false);
        cycles += c;
        if llc_miss {
            self.stats.llc_misses += 1;
        }
        AccessOutcome::Ok { cycles, llc_miss }
    }

    /// Hardware page walk with MMU-cache acceleration. Adds latency into
    /// `cycles`; returns the leaf PTE or a fault outcome.
    fn walk(&mut self, va: VirtAddr, cycles: &mut u64) -> Result<Pte, AccessOutcome> {
        let mut table = self.root;
        for level in (0..4usize).rev() {
            let entry_addr =
                PhysAddr::new(table.base().as_u64() + (va.level_index(level) as u64) * 8);
            let pte = if level > 0 {
                if let Some(hit) = self.mmu.lookup(entry_addr) {
                    *cycles += self.mmu.latency_cycles;
                    hit
                } else {
                    let (line, c, llc_miss, verdict) = self.line_access(entry_addr, false, true);
                    *cycles += c;
                    if llc_miss {
                        self.stats.walk_llc_misses += 1;
                    }
                    if verdict == ReadVerdict::CheckFailed {
                        self.stats.integrity_faults += 1;
                        return Err(AccessOutcome::PteCheckFailed {
                            cycles: *cycles,
                            level,
                        });
                    }
                    let pte = Pte::from_raw(line.word(entry_addr.line_offset() / 8));
                    self.mmu.insert(entry_addr, pte);
                    pte
                }
            } else {
                let (line, c, llc_miss, verdict) = self.line_access(entry_addr, false, true);
                *cycles += c;
                if llc_miss {
                    self.stats.walk_llc_misses += 1;
                }
                if verdict == ReadVerdict::CheckFailed {
                    self.stats.integrity_faults += 1;
                    return Err(AccessOutcome::PteCheckFailed {
                        cycles: *cycles,
                        level,
                    });
                }
                Pte::from_raw(line.word(entry_addr.line_offset() / 8))
            };
            match self.classify_pte(va, level, pte) {
                WalkStep::Fault { level } => {
                    return Err(AccessOutcome::PageFault {
                        cycles: *cycles,
                        level,
                    })
                }
                WalkStep::Leaf(leaf) => return Ok(leaf),
                WalkStep::Descend(next) => table = next,
            }
        }
        unreachable!("level 0 returns");
    }

    /// Classifies one walk-level PTE: fault, leaf (TLB inserted, huge pages
    /// splintered to 4 KB granularity), or descend. Shared verbatim by the
    /// blocking walk and the pipelined resume path.
    fn classify_pte(&mut self, va: VirtAddr, level: usize, pte: Pte) -> WalkStep {
        let max_frame = 1u64 << (self.max_phys_bits - 12);
        if !pte.present() {
            return WalkStep::Fault { level };
        }
        if pte.frame().0 >= max_frame {
            // The OS-visible bounds check of Section IV-E.
            return WalkStep::Fault { level };
        }
        if level == 0 {
            self.tlb.insert(va.vpn(), pte);
            return WalkStep::Leaf(pte);
        }
        if level == 1 && pte.huge_page() {
            // 2 MB leaf: splinter into a 4 KB-granular TLB entry so the
            // downstream address math stays uniform.
            let mut splinter = pte;
            splinter.set_frame(Frame((pte.frame().0 & !0x1ff) | va.pt_index() as u64));
            let splinter = Pte::from_raw(splinter.raw() & !pagetable::x86_64::bits::HUGE_PAGE);
            self.tlb.insert(va.vpn(), splinter);
            return WalkStep::Leaf(splinter);
        }
        WalkStep::Descend(pte.frame())
    }

    /// Core line-access path: L1 → L2 → LLC → controller.
    ///
    /// Returns `(line, cycles, llc_miss, verdict)`. Walk accesses
    /// (`is_pte`) skip the L1 and are installed into L2/LLC, mirroring
    /// hardware walkers.
    fn line_access(
        &mut self,
        addr: PhysAddr,
        write: bool,
        is_pte: bool,
    ) -> (Line, u64, bool, ReadVerdict) {
        match self.probe_caches(addr, write, is_pte) {
            Ok((line, cycles)) => (line, cycles, false, ReadVerdict::Forwarded),
            Err(mut cycles) => {
                let read = self.ctrl_for(addr).read_line(addr, is_pte);
                cycles += read.latency_cycles;
                if read.verdict == ReadVerdict::CheckFailed {
                    // The line is not installed anywhere (Section IV-F).
                    return (read.line, cycles, true, read.verdict);
                }
                self.install_fill(addr, read.line, write, is_pte);
                (read.line, cycles, true, read.verdict)
            }
        }
    }

    /// Probes L1 → L2 → LLC. On a hit, performs the usual upward fills /
    /// store-dirtying and returns the line plus probe cycles; on a full
    /// miss, returns the accumulated probe cycles — the caller either reads
    /// DRAM inline (blocking path) or suspends on the pipeline.
    fn probe_caches(
        &mut self,
        addr: PhysAddr,
        write: bool,
        is_pte: bool,
    ) -> Result<(Line, u64), u64> {
        let mut cycles = 0u64;
        // The L1 is probed even for walk accesses (hardware walkers are
        // coherent with the data cache); walk fills go into L2/LLC only.
        cycles += self.l1d.latency_cycles;
        if let Some(line) = self.l1d.lookup(addr) {
            if write && !is_pte {
                // A demand store that hits: the line's data is about to
                // change, so dirty it now (lookup itself never dirties).
                self.l1d.update(addr, line, true);
            }
            return Ok((line, cycles));
        }
        cycles += self.l2.latency_cycles;
        if let Some(line) = self.l2.lookup(addr) {
            if !is_pte {
                self.fill_level(0, addr, line, write);
            }
            return Ok((line, cycles));
        }
        cycles += self.llc.latency_cycles;
        if let Some(line) = self.llc.lookup(addr) {
            self.fill_level(1, addr, line, false);
            if !is_pte {
                self.fill_level(0, addr, line, write);
            }
            return Ok((line, cycles));
        }
        Err(cycles)
    }

    /// Installs a DRAM fill into LLC → L2 (→ L1 for demand accesses),
    /// evicting through [`Self::writeback`] / the controller as usual.
    /// Shared by the blocking miss path and the pipelined resume path.
    fn install_fill(&mut self, addr: PhysAddr, line: Line, write: bool, is_pte: bool) {
        if let Some((wa, wl)) = self.llc.fill(addr, line, false) {
            self.ctrl_for(wa).write_line(wa, wl);
        }
        self.fill_level(1, addr, line, false);
        if !is_pte {
            self.fill_level(0, addr, line, write);
        }
    }

    /// Fills `addr` into cache level `level` (0 = L1D, 1 = L2), writing any
    /// evicted dirty line back through [`Self::writeback`] — the one
    /// level-indexed fill/eviction helper both access paths share.
    fn fill_level(&mut self, level: usize, addr: PhysAddr, line: Line, dirty: bool) {
        let evicted = match level {
            0 => self.l1d.fill(addr, line, dirty),
            1 => self.l2.fill(addr, line, dirty),
            _ => unreachable!("only L1D and L2 fill through fill_level"),
        };
        if let Some((wa, wl)) = evicted {
            // Writebacks percolate down; model them as reaching DRAM via
            // the controller (off the critical path).
            self.writeback(wa, wl);
        }
    }

    fn writeback(&mut self, addr: PhysAddr, line: Line) {
        // Dirty data merges into lower levels if present, else goes to DRAM.
        if self.llc.peek(addr).is_some() {
            self.llc.update(addr, line, true);
        } else {
            self.ctrl_for(addr).write_line(addr, line);
        }
    }

    /// Writes every dirty line back to DRAM (through PT-Guard) and clears
    /// dirtiness — the state a quiesced system reaches naturally.
    ///
    /// In-flight pipelined ops are drained first: a flush with a non-empty
    /// MSHR file must complete — not drop — the pending misses, or their
    /// fills (and any dirty lines they produce) would be lost.
    pub fn flush_caches(&mut self) {
        // Drain through the event engine, not a blind step loop: if reads
        // are queued but no event can fire, stepping again would spin
        // forever — fail loudly with the stuck state instead.
        while self.any_queued_reads() {
            let progressed = self.advance_to_next_event();
            assert!(
                progressed,
                "flush deadlock: {} reads queued across {} channels but no event is scheduled \
                 ({} pending ops, {} MSHR entries)",
                self.queued_reads_total(),
                self.channels(),
                self.pending.len(),
                self.mshr.len(),
            );
        }
        debug_assert!(
            self.pending.is_empty(),
            "every pending op waits on a queued read"
        );
        for (a, l) in self.l1d.drain_dirty() {
            self.writeback(a, l);
        }
        for (a, l) in self.l2.drain_dirty() {
            self.writeback(a, l);
        }
        for (a, l) in self.llc.drain_dirty() {
            self.ctrl_for(a).write_line(a, l);
        }
    }

    /// Invalidates all cached translations and cache lines that alias the
    /// page-table pages — used after direct DRAM manipulation in
    /// experiments (hammering bypasses the coherent path).
    pub fn invalidate_translation_state(&mut self) {
        self.tlb.flush();
        self.mmu.flush();
    }

    /// Invalidates one line everywhere (without writeback).
    pub fn invalidate_line(&mut self, addr: PhysAddr) {
        let _ = self.l1d.invalidate(addr);
        let _ = self.l2.invalidate(addr);
        let _ = self.llc.invalidate(addr);
    }

    /// Functional, untimed u64 read at a physical address, through the
    /// cache hierarchy (caches win over DRAM).
    #[must_use]
    pub fn func_read_u64(&mut self, addr: PhysAddr) -> u64 {
        let line = match self
            .l1d
            .peek(addr)
            .or_else(|| self.l2.peek(addr))
            .or_else(|| self.llc.peek(addr))
        {
            Some(line) => line,
            None => self.ctrl_for(addr).read_line(addr, false).line,
        };
        line.word(addr.line_offset() / 8)
    }

    /// Functional, untimed u64 write at a physical address: read-modify-
    /// write through the hierarchy with write-allocate into the L1.
    pub fn func_write_u64(&mut self, addr: PhysAddr, value: u64) {
        let mut line = match self
            .l1d
            .peek(addr)
            .or_else(|| self.l2.peek(addr))
            .or_else(|| self.llc.peek(addr))
        {
            Some(line) => line,
            None => self.ctrl_for(addr).read_line(addr, false).line,
        };
        line.set_word(addr.line_offset() / 8, value);
        if self.l1d.peek(addr).is_some() {
            self.l1d.update(addr, line, true);
        } else if self.l2.peek(addr).is_some() {
            self.l2.update(addr, line, true);
        } else if self.llc.peek(addr).is_some() {
            self.llc.update(addr, line, true);
        } else {
            self.fill_level(0, addr, line, true);
        }
    }

    /// Issues a demand access into the pipelined path and returns its op id.
    /// The op runs as far as the caches allow; a full miss suspends it on
    /// the MSHR file until a [`Self::pipe_step`] drains the controller. The
    /// result is collected via [`Self::pipe_take_completed`].
    pub fn pipe_issue(&mut self, va: VirtAddr, write: bool) -> u64 {
        if write {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }
        let id = self.next_op_id;
        self.next_op_id += 1;
        let mut op = PendingOp {
            id,
            va,
            write,
            cycles: self.cfg.tlb_latency_cycles,
            state: OpState::Walk {
                table: self.root,
                level: 3,
            },
        };
        if let Some(leaf) = self.tlb.lookup(va.vpn()) {
            op.state = OpState::Data { leaf };
        } else {
            self.stats.walks += 1;
        }
        self.drive(op);
        id
    }

    /// Issues a demand access on the event-driven pipeline, resolving
    /// synchronous completions inline.
    ///
    /// Equivalent to [`Self::pipe_issue`] followed by checking whether the
    /// op already completed — same stats, same cache/TLB side effects,
    /// same cycle counts — but a TLB hit that also hits the caches skips
    /// the op machinery entirely (no id, no completion-buffer round trip),
    /// which is the overwhelmingly common case the per-step polling
    /// pipeline made every access pay for. Ops that complete synchronously
    /// never consume an op id; ids stay monotonic across the ops that do
    /// suspend, which is all the MSHR merge order needs.
    pub fn pipe_issue_event(&mut self, va: VirtAddr, write: bool) -> IssueOutcome {
        if write {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }
        if let Some(leaf) = self.tlb.lookup(va.vpn()) {
            // Translated without a walk: probe the hierarchy directly.
            let pa = leaf.target(va.page_offset());
            match self.probe_caches(pa, write, false) {
                Ok((_, c)) => {
                    return IssueOutcome::Done(AccessOutcome::Ok {
                        cycles: self.cfg.tlb_latency_cycles + c,
                        llc_miss: false,
                    });
                }
                Err(c) => {
                    let id = self.next_op_id;
                    self.next_op_id += 1;
                    let op = PendingOp {
                        id,
                        va,
                        write,
                        cycles: self.cfg.tlb_latency_cycles + c,
                        state: OpState::AwaitData { pa },
                    };
                    self.suspend(op, pa, false);
                    return IssueOutcome::Pending(id);
                }
            }
        }
        self.stats.walks += 1;
        let id = self.next_op_id;
        self.next_op_id += 1;
        let op = PendingOp {
            id,
            va,
            write,
            cycles: self.cfg.tlb_latency_cycles,
            state: OpState::Walk {
                table: self.root,
                level: 3,
            },
        };
        self.drive(op);
        // `drive` either suspended the op or pushed its outcome last.
        if let Some(&(cid, out)) = self.completed.last() {
            if cid == id {
                self.completed.pop();
                return IssueOutcome::Done(out);
            }
        }
        IssueOutcome::Pending(id)
    }

    /// Steps the pipeline once (compatibility shim over the event engine:
    /// exactly [`Self::advance_to_next_event`], discarding the progress
    /// flag).
    pub fn pipe_step(&mut self) {
        let _ = self.advance_to_next_event();
    }

    /// Pumps the event engine one round: jumps virtual time to the next
    /// scheduled events, drains every channel whose arm fired, merges the
    /// completions, and resumes the ops waiting on them (resumed ops run
    /// until they complete or suspend on a new miss, arming the next
    /// round). Returns `false` — having done nothing — when no events are
    /// scheduled.
    ///
    /// Completions retire in integer-picosecond order, ties broken by
    /// channel index then request id — the same `(ps, channel, id)` total
    /// order the wheel itself pops in — so the resume order is
    /// deterministic and, with one channel, identical to the
    /// single-controller model's `(dram_ps, id)` order.
    pub fn advance_to_next_event(&mut self) -> bool {
        if self.wheel.is_empty() {
            return false;
        }
        let from_ps = self.wheel.now_ps();
        let mut drained = std::mem::take(&mut self.drain_buf);
        if self.aux.is_empty() {
            // Single-channel fast path: at most one drain arm can ever be
            // scheduled, and a drain's output is already in `(dram_ps,
            // id)` completion order, so the cross-channel tag/merge/sort
            // is skipped — the resume order is identical by construction.
            let Some((_, PumpEvent::Drain)) = self.wheel.pop() else {
                unreachable!("non-empty wheel");
            };
            debug_assert!(self.wheel.is_empty(), "one channel, one arm");
            self.armed[0] = false;
            drained.clear();
            self.controller.drain_reads(&mut drained);
            self.pump.bank_ready_events += drained.len() as u64;
            self.record_advance(from_ps);
            for (req_id, read) in &drained {
                self.resolve_completion(0, *req_id, read);
            }
            self.drain_buf = drained;
            return true;
        }
        let mut merged = std::mem::take(&mut self.merge_buf);
        merged.clear();
        // One round = everything currently scheduled. Arms posted by the
        // resumes below land in the wheel for the next round.
        while let Some((key, PumpEvent::Drain)) = self.wheel.pop() {
            let ch = key.channel as usize;
            self.armed[ch] = false;
            drained.clear();
            self.channel_mut(ch).drain_reads(&mut drained);
            self.pump.bank_ready_events += drained.len() as u64;
            merged.extend(
                drained
                    .drain(..)
                    .map(|(req_id, read)| (key.channel, req_id, read)),
            );
        }
        self.record_advance(from_ps);
        if merged.len() > 1 {
            merged.sort_by_key(|a| (a.2.dram_ps, a.0, a.1));
        }
        for (ch, req_id, read) in &merged {
            self.resolve_completion(*ch, *req_id, read);
        }
        self.drain_buf = drained;
        self.merge_buf = merged;
        true
    }

    /// Counts one pump round and the virtual time it skipped.
    fn record_advance(&mut self, from_ps: u128) {
        self.pump.advances += 1;
        let skipped = self.wheel.now_ps() - from_ps;
        self.pump
            .idle_skip_ps
            .record(u64::try_from(skipped).unwrap_or(u64::MAX));
    }

    /// Retires one completed read: pops its MSHR entry and resumes every
    /// waiter (the primary installs the fill, merged waiters only collect
    /// the latency).
    fn resolve_completion(&mut self, ch: u32, req_id: u64, read: &crate::controller::DramRead) {
        let Some(pos) = self
            .mshr
            .iter()
            .position(|e| e.channel == ch && e.req_id == req_id)
        else {
            return;
        };
        let entry = self.mshr.remove(pos);
        for (i, op_id) in std::iter::once(entry.primary)
            .chain(entry.merged.iter().copied())
            .enumerate()
        {
            let pos = self
                .pending
                .iter()
                .position(|p| p.id == op_id)
                .expect("MSHR waiter must be pending");
            let op = self.pending.remove(pos);
            self.resume(op, read, i == 0);
        }
    }

    /// Event-pump counters (wheel traffic, device completions, idle
    /// skips). Refresh slices are sampled from the channel devices, so
    /// the count covers the whole run, blocking interludes included.
    #[must_use]
    pub fn pump_stats(&self) -> PumpStats {
        let wheel = self.wheel.stats();
        let refresh_events = (0..self.channels())
            .map(|ch| self.channel(ch).device().stats().refresh_slices)
            .sum();
        PumpStats {
            events_posted: wheel.posted,
            events_fired: wheel.fired,
            wheel_cascades: wheel.cascades,
            refresh_events,
            ..self.pump.clone()
        }
    }

    /// Ops issued but not yet completed.
    #[must_use]
    pub fn pipe_pending(&self) -> usize {
        self.pending.len()
    }

    /// Takes the `(op id, outcome)` pairs completed so far.
    pub fn pipe_take_completed(&mut self) -> Vec<(u64, AccessOutcome)> {
        std::mem::take(&mut self.completed)
    }

    /// Appends the `(op id, outcome)` pairs completed so far to `out`,
    /// leaving the internal buffer empty but with its capacity intact —
    /// the allocation-free variant of [`Self::pipe_take_completed`] the
    /// windowed drivers use every op.
    pub fn pipe_drain_completed(&mut self, out: &mut Vec<(u64, AccessOutcome)>) {
        out.append(&mut self.completed);
    }

    /// Runs `op` until it completes or suspends on a miss.
    fn drive(&mut self, mut op: PendingOp) {
        loop {
            match op.state {
                OpState::Walk { table, level } => {
                    let entry_addr = PhysAddr::new(
                        table.base().as_u64() + (op.va.level_index(level) as u64) * 8,
                    );
                    let mmu_hit = if level > 0 {
                        self.mmu.lookup(entry_addr)
                    } else {
                        None
                    };
                    let pte = if let Some(hit) = mmu_hit {
                        op.cycles += self.mmu.latency_cycles;
                        hit
                    } else {
                        match self.probe_caches(entry_addr, false, true) {
                            Ok((line, c)) => {
                                op.cycles += c;
                                let pte = Pte::from_raw(line.word(entry_addr.line_offset() / 8));
                                if level > 0 {
                                    self.mmu.insert(entry_addr, pte);
                                }
                                pte
                            }
                            Err(c) => {
                                op.cycles += c;
                                op.state = OpState::AwaitWalk { level, entry_addr };
                                self.suspend(op, entry_addr, true);
                                return;
                            }
                        }
                    };
                    match self.classify_pte(op.va, level, pte) {
                        WalkStep::Fault { level } => {
                            self.completed.push((
                                op.id,
                                AccessOutcome::PageFault {
                                    cycles: op.cycles,
                                    level,
                                },
                            ));
                            return;
                        }
                        WalkStep::Leaf(leaf) => op.state = OpState::Data { leaf },
                        WalkStep::Descend(next) => {
                            op.state = OpState::Walk {
                                table: next,
                                level: level - 1,
                            }
                        }
                    }
                }
                OpState::Data { leaf } => {
                    let pa = leaf.target(op.va.page_offset());
                    match self.probe_caches(pa, op.write, false) {
                        Ok((_, c)) => {
                            op.cycles += c;
                            self.completed.push((
                                op.id,
                                AccessOutcome::Ok {
                                    cycles: op.cycles,
                                    llc_miss: false,
                                },
                            ));
                            return;
                        }
                        Err(c) => {
                            op.cycles += c;
                            op.state = OpState::AwaitData { pa };
                            self.suspend(op, pa, false);
                            return;
                        }
                    }
                }
                OpState::AwaitWalk { .. } | OpState::AwaitData { .. } => {
                    unreachable!("suspended ops resume through pipe_step")
                }
            }
        }
    }

    /// Parks `op` on the MSHR entry for `addr`'s line, creating the entry —
    /// and queueing the DRAM read — if this is the line's first miss.
    fn suspend(&mut self, op: PendingOp, addr: PhysAddr, is_pte: bool) {
        let line_addr = addr.line_addr().as_u64();
        if let Some(entry) = self
            .mshr
            .iter_mut()
            .find(|e| e.line_addr == line_addr && e.is_pte == is_pte)
        {
            entry.merged.push(op.id);
        } else {
            let ch = self.chan_of(addr);
            let req_id = self.channel_mut(ch).enqueue_read(addr, is_pte);
            self.mshr.push(MshrEntry {
                channel: u32::try_from(ch).expect("channel index"),
                req_id,
                line_addr,
                is_pte,
                primary: op.id,
                merged: Vec::new(),
            });
            self.stats.mshr_hwm = self.stats.mshr_hwm.max(self.mshr.len() as u64);
            // First outstanding read on this channel: arm its drain on
            // the wheel at the channel device's current time (clamped to
            // the wheel's frontier if this channel lags).
            if !self.armed[ch] {
                self.armed[ch] = true;
                let ps = self.channel(ch).device().now_ps();
                self.wheel.post(
                    EventKey {
                        ps,
                        channel: u32::try_from(ch).expect("channel index"),
                        id: req_id,
                    },
                    PumpEvent::Drain,
                );
            }
        }
        self.pending.push(op);
    }

    /// Resumes a suspended op with its DRAM read. The primary waiter
    /// installs the fill; merged waiters only collect the latency (and, for
    /// stores, dirty the installed line).
    fn resume(&mut self, mut op: PendingOp, read: &crate::controller::DramRead, primary: bool) {
        op.cycles += read.latency_cycles;
        match op.state {
            OpState::AwaitWalk { level, entry_addr } => {
                self.stats.walk_llc_misses += 1;
                if read.verdict == ReadVerdict::CheckFailed {
                    self.stats.integrity_faults += 1;
                    self.completed.push((
                        op.id,
                        AccessOutcome::PteCheckFailed {
                            cycles: op.cycles,
                            level,
                        },
                    ));
                    return;
                }
                if primary {
                    self.install_fill(entry_addr, read.line, false, true);
                }
                let pte = Pte::from_raw(read.line.word(entry_addr.line_offset() / 8));
                if level > 0 {
                    self.mmu.insert(entry_addr, pte);
                }
                match self.classify_pte(op.va, level, pte) {
                    WalkStep::Fault { level } => {
                        self.completed.push((
                            op.id,
                            AccessOutcome::PageFault {
                                cycles: op.cycles,
                                level,
                            },
                        ));
                    }
                    WalkStep::Leaf(leaf) => {
                        op.state = OpState::Data { leaf };
                        self.drive(op);
                    }
                    WalkStep::Descend(next) => {
                        op.state = OpState::Walk {
                            table: next,
                            level: level - 1,
                        };
                        self.drive(op);
                    }
                }
            }
            OpState::AwaitData { pa } => {
                self.stats.llc_misses += 1;
                // The demand path consumes the line whatever the verdict
                // (matching the blocking path, which ignores it for data),
                // but a failed check is never installed (Section IV-F).
                if read.verdict != ReadVerdict::CheckFailed {
                    if primary {
                        self.install_fill(pa, read.line, op.write, false);
                    } else if op.write {
                        // Merged store: the primary installed the line
                        // (possibly clean); dirty it like a store hit.
                        if let Some(line) = self.l1d.peek(pa) {
                            self.l1d.update(pa, line, true);
                        }
                    }
                }
                self.completed.push((
                    op.id,
                    AccessOutcome::Ok {
                        cycles: op.cycles,
                        llc_miss: true,
                    },
                ));
            }
            OpState::Walk { .. } | OpState::Data { .. } => {
                unreachable!("only suspended ops resume")
            }
        }
    }
}

/// A [`PhysMem`] view of a [`MemorySystem`] for the OS model: the
/// `AddressSpace` builds page tables *through the cache hierarchy*, exactly
/// like kernel stores, so PTE lines acquire MACs when they drain to DRAM.
#[derive(Debug)]
pub struct OsPort<'a> {
    sys: &'a mut MemorySystem,
}

impl<'a> OsPort<'a> {
    /// Wraps a memory system.
    #[must_use]
    pub fn new(sys: &'a mut MemorySystem) -> Self {
        Self { sys }
    }
}

impl PhysMem for OsPort<'_> {
    fn size(&self) -> u64 {
        self.sys.controller.device().size()
    }

    fn read_u8(&self, _addr: PhysAddr) -> u8 {
        unreachable!("OsPort uses the word-granular accessors")
    }

    fn write_u8(&mut self, _addr: PhysAddr, _value: u8) {
        unreachable!("OsPort uses the word-granular accessors")
    }

    fn read_u64(&self, addr: PhysAddr) -> u64 {
        // PhysMem::read_u64 takes &self; route through an unsafe-free
        // workaround: peek caches, fall back to an *untimed functional*
        // device read of the stripped line.
        if let Some(line) = self
            .sys
            .l1d
            .peek(addr)
            .or_else(|| self.sys.l2.peek(addr))
            .or_else(|| self.sys.llc.peek(addr))
        {
            return line.word(addr.line_offset() / 8);
        }
        // Functional DRAM read: strip a verified MAC like the read path
        // would, without mutating engine statistics or timing. The line
        // lives on whichever channel the interleave maps it to.
        let ctrl = self.sys.channel(self.sys.chan_of(addr));
        let raw = Line::from_bytes(&ctrl.device().read_line(addr));
        let stripped = match ctrl.engine() {
            Some(engine) => {
                let mac_unit = engine.mac_unit();
                let stored = ptguard::pattern::extract_mac(&raw);
                if mac_unit.compute(&raw, addr) == stored {
                    if engine.config().optimized {
                        ptguard::pattern::strip_mac_and_identifier(&raw)
                    } else {
                        ptguard::pattern::strip_mac(&raw)
                    }
                } else {
                    raw
                }
            }
            None => raw,
        };
        stripped.word(addr.line_offset() / 8)
    }

    fn write_u64(&mut self, addr: PhysAddr, value: u64) {
        self.sys.func_write_u64(addr, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram::{DramDevice, RowhammerConfig};
    use pagetable::space::AddressSpace;
    use pagetable::x86_64::PteFlags;
    use ptguard::PtGuardConfig;
    use ptguard::PtGuardEngine;

    fn system(guarded: bool) -> MemorySystem {
        let device = DramDevice::ddr4_4gb(RowhammerConfig::immune());
        let engine = guarded.then(|| PtGuardEngine::new(PtGuardConfig::default()));
        let mc = MemoryController::new(device, engine, 3.0);
        MemorySystem::new(MemSysConfig::default(), mc)
    }

    /// Builds a mapped address space inside the system via the OS port.
    fn setup(sys: &mut MemorySystem, pages: u64) -> (AddressSpace, u64) {
        let base = 0x40_0000_0000u64;
        let mut port = OsPort::new(sys);
        let mut space = AddressSpace::new(&mut port, 32).unwrap();
        for i in 0..pages {
            let va = VirtAddr::new(base + i * 4096);
            space.map_new(&mut port, va, PteFlags::user_data()).unwrap();
        }
        let root = space.root();
        sys.set_root(root, 32);
        (space, base)
    }

    #[test]
    fn load_walks_then_hits_tlb() {
        let mut sys = system(true);
        let (_space, base) = setup(&mut sys, 4);
        let va = VirtAddr::new(base);
        let first = sys.load(va);
        assert!(first.is_ok());
        assert_eq!(sys.stats().walks, 1);
        let second = sys.load(va);
        assert!(second.is_ok());
        assert_eq!(sys.stats().walks, 1, "second access must hit the TLB");
        assert!(second.cycles() < first.cycles());
    }

    #[test]
    fn walk_verifies_pte_lines_from_dram() {
        let mut sys = system(true);
        let (_space, base) = setup(&mut sys, 4);
        sys.flush_caches();
        sys.invalidate_translation_state();
        // Also evict PTE lines from caches so the walk reaches DRAM: the
        // caches may hold them from construction. Invalidate everything the
        // page tables touch.
        let lines: Vec<PhysAddr> = _space.pte_line_addrs();
        for a in &lines {
            sys.invalidate_line(*a);
        }
        let out = sys.load(VirtAddr::new(base));
        assert!(out.is_ok());
        let engine_stats = sys.controller.engine().unwrap().stats();
        assert!(
            engine_stats.pte_reads > 0,
            "walk must reach DRAM with is_pte set"
        );
        assert!(engine_stats.verified > 0, "PTE line must verify");
    }

    #[test]
    fn tampered_pte_in_dram_faults_the_walk() {
        let mut sys = system(true);
        let (space, base) = setup(&mut sys, 64);
        sys.flush_caches();
        sys.invalidate_translation_state();
        for a in space.pte_line_addrs() {
            sys.invalidate_line(a);
        }
        // Find the leaf PTE line of `base` (walking a MAC-stripped view —
        // in-DRAM PTEs carry MACs in their high PFN bits) and corrupt it
        // beyond correction: 5 flips inside the stored MAC exceed the
        // soft-match tolerance (k = 4), an uncorrectable-MAC fault.
        let leaf_line = {
            let port = OsPort::new(&mut sys);
            space
                .walker()
                .walk(&port, VirtAddr::new(base))
                .unwrap()
                .accesses[3]
                .entry_addr
                .line_addr()
        };
        let dev = sys.controller.device_mut();
        let mut raw = Line::from_bytes(&dev.read_line(leaf_line));
        raw.set_word(0, raw.word(0) ^ (0b11111 << 41));
        let bytes = raw.to_bytes();
        dev.write_line(leaf_line, &bytes);

        match sys.load(VirtAddr::new(base)) {
            AccessOutcome::PteCheckFailed { level: 0, .. } => {}
            other => panic!("expected PteCheckFailed at leaf, got {other:?}"),
        }
        assert_eq!(sys.stats().integrity_faults, 1);
    }

    #[test]
    fn unguarded_system_consumes_tampered_pte() {
        let mut sys = system(false);
        let (space, base) = setup(&mut sys, 64);
        sys.flush_caches();
        sys.invalidate_translation_state();
        for a in space.pte_line_addrs() {
            sys.invalidate_line(a);
        }
        let walker = space.walker();
        let dev = sys.controller.device_mut();
        let walk = walker.walk(dev, VirtAddr::new(base)).unwrap();
        let leaf_addr = walk.accesses[3].entry_addr;
        // Flip one PFN bit within bounds: translation silently changes.
        let raw = dev.read_u64(leaf_addr);
        dev.write_u64(leaf_addr, raw ^ (1 << 13));
        let out = sys.load(VirtAddr::new(base));
        assert!(
            out.is_ok(),
            "unprotected system happily uses the tampered PTE"
        );
        let hijacked = sys.tlb().peek_frame(VirtAddr::new(base).vpn()).unwrap();
        assert_ne!(hijacked, walk.leaf.frame(), "translation was hijacked");
    }

    #[test]
    fn mmu_cache_accelerates_subsequent_walks() {
        let mut sys = system(true);
        let (_space, base) = setup(&mut sys, 4);
        // Cold walk: every upper level misses the MMU cache.
        assert!(sys.load(VirtAddr::new(base)).is_ok());
        let cold = sys.mmu_stats();
        assert_eq!(cold.hits, 0);
        assert_eq!(cold.misses, 3);
        // Second page shares all upper levels: three MMU-cache hits.
        assert!(sys.load(VirtAddr::new(base + 4096)).is_ok());
        let warm = sys.mmu_stats();
        assert_eq!(warm.hits, 3);
        assert_eq!(warm.misses, 3);
    }

    #[test]
    fn huge_pages_walk_correctly_and_reduce_walk_traffic() {
        let mut sys = system(true);
        let base = 0x80_0000_0000u64;
        let (root, huge_frame) = {
            let mut port = OsPort::new(&mut sys);
            let mut space = AddressSpace::new(&mut port, 32).unwrap();
            // One 2 MB huge page.
            let frame = {
                // Reach into the allocator via contiguous allocation.
                let f = space.alloc_frame(&mut port).unwrap();
                let _ = f; // burn one to prove alignment logic is separate
                space_alloc_huge(&mut space, &mut port)
            };
            space
                .map_huge_2mb(&mut port, VirtAddr::new(base), frame, PteFlags::user_data())
                .unwrap();
            (space.root(), frame)
        };
        sys.set_root(root, 32);
        sys.flush_caches();

        // Touch 64 different 4 KB pages inside the huge page.
        for i in 0..64u64 {
            let out = sys.load(VirtAddr::new(base + i * 4096 + 0x10));
            assert!(out.is_ok(), "page {i}: {out:?}");
            let got = sys
                .tlb()
                .peek_frame(VirtAddr::new(base + i * 4096).vpn())
                .unwrap();
            assert_eq!(got.0, huge_frame.0 + i, "splintered TLB frame");
        }
        // Walks happened (one per 4 KB splinter) but terminated at the PD
        // level: only 3 levels of PTE accesses, and no PT-level lines.
        assert_eq!(sys.stats().walks, 64);
    }

    fn space_alloc_huge(space: &mut AddressSpace, port: &mut OsPort<'_>) -> pagetable::addr::Frame {
        // Allocate until a 2 MB-aligned run starts (test helper).
        loop {
            let f = space.alloc_frame(port).unwrap();
            if f.0 % 512 == 511 {
                // next 512 allocations are the aligned run
                let start = space.alloc_frame(port).unwrap();
                assert_eq!(start.0 % 512, 0);
                for _ in 1..512 {
                    let _ = space.alloc_frame(port).unwrap();
                }
                return start;
            }
        }
    }

    /// Forces the next accesses to miss all the way to DRAM: dirty state
    /// drains, translations drop, and every page-table line is evicted.
    fn cold_start(sys: &mut MemorySystem, space: &AddressSpace) {
        sys.flush_caches();
        sys.invalidate_translation_state();
        for a in space.pte_line_addrs() {
            sys.invalidate_line(a);
        }
    }

    #[test]
    fn pipelined_access_matches_blocking_cycles() {
        // One cold access through each path, from identical machine state,
        // must cost identical cycles — the pipeline is a refactor of the
        // same event sequence, not a new timing model.
        let mut blocking = system(true);
        let (space_b, base) = setup(&mut blocking, 8);
        let mut piped = system(true);
        let (space_p, _) = setup(&mut piped, 8);
        for i in 0..8 {
            let va = VirtAddr::new(base + i * 4096);
            cold_start(&mut blocking, &space_b);
            cold_start(&mut piped, &space_p);
            let out_b = blocking.load(va);
            let id = piped.pipe_issue(va, false);
            while piped.pipe_pending() > 0 {
                piped.pipe_step();
            }
            let done = piped.pipe_take_completed();
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].0, id);
            assert!(done[0].1.is_ok());
            assert_eq!(
                out_b.cycles(),
                done[0].1.cycles(),
                "page {i}: blocking vs pipelined latency"
            );
        }
    }

    #[test]
    fn flush_drains_inflight_misses_instead_of_dropping_them() {
        let mut sys = system(true);
        let (space, base) = setup(&mut sys, 16);
        cold_start(&mut sys, &space);
        // Issue a window of stores that all miss to DRAM; their dirty fills
        // exist only in the pipeline until the misses complete.
        let ids: Vec<u64> = (0..4)
            .map(|i| sys.pipe_issue(VirtAddr::new(base + i * 4096), true))
            .collect();
        assert!(sys.pipe_pending() > 0, "cold stores must suspend on misses");
        assert!(sys.controller.has_queued_reads());
        sys.flush_caches();
        assert_eq!(sys.pipe_pending(), 0, "flush must drain the MSHR file");
        let done = sys.pipe_take_completed();
        assert_eq!(done.len(), ids.len(), "no in-flight op may be dropped");
        for (id, out) in &done {
            assert!(ids.contains(id));
            assert!(out.is_ok(), "drained op {id} faulted: {out:?}");
        }
        assert!(sys.stats().mshr_hwm >= 1);
        assert!(sys.controller.stats().queue_occupancy_hwm >= 1);
    }

    #[test]
    fn mshr_merges_misses_to_the_same_line() {
        let mut sys = system(true);
        let (space, base) = setup(&mut sys, 4);
        // Warm the TLB so the data accesses need no walk, then go cold on
        // the caches only: both issues miss on the same data line.
        for i in 0..4 {
            let _ = sys.load(VirtAddr::new(base + i * 4096));
        }
        sys.flush_caches();
        let pa = {
            let port = OsPort::new(&mut sys);
            space.translate(&port, VirtAddr::new(base)).unwrap()
        };
        sys.invalidate_line(pa);
        let reads_before = sys.controller.stats().reads;
        let a = sys.pipe_issue(VirtAddr::new(base), false);
        let b = sys.pipe_issue(VirtAddr::new(base + 8), false);
        assert_eq!(sys.pipe_pending(), 2, "both ops wait on the same miss");
        while sys.pipe_pending() > 0 {
            sys.pipe_step();
        }
        let done = sys.pipe_take_completed();
        assert_eq!(done.len(), 2);
        for (id, out) in &done {
            assert!(*id == a || *id == b);
            assert!(out.is_ok());
        }
        assert_eq!(
            sys.controller.stats().reads - reads_before,
            1,
            "the secondary miss must merge into the primary's MSHR entry"
        );
    }

    #[test]
    fn os_port_roundtrip() {
        let mut sys = system(true);
        let addr = PhysAddr::new(0x123450);
        {
            let mut port = OsPort::new(&mut sys);
            port.write_u64(addr, 0xdead_beef_cafe_f00d);
            assert_eq!(port.read_u64(addr), 0xdead_beef_cafe_f00d);
        }
        sys.flush_caches();
        {
            let port = OsPort::new(&mut sys);
            assert_eq!(port.read_u64(addr), 0xdead_beef_cafe_f00d);
        }
    }

    fn system_n(guarded: bool, channels: usize) -> MemorySystem {
        let cfg = MemSysConfig {
            channels,
            ..MemSysConfig::default()
        };
        let controllers = (0..channels)
            .map(|_| {
                let device = DramDevice::ddr4_4gb(RowhammerConfig::immune());
                let engine = guarded.then(|| PtGuardEngine::new(PtGuardConfig::default()));
                MemoryController::new(device, engine, 3.0)
            })
            .collect();
        MemorySystem::new_multi(cfg, controllers)
    }

    #[test]
    fn four_channel_system_spreads_traffic_and_reconciles_stats() {
        let mut sys = system_n(true, 4);
        let (space, base) = setup(&mut sys, 64);
        cold_start(&mut sys, &space);
        for i in 0..64 {
            let out = sys.load(VirtAddr::new(base + i * 4096));
            assert!(out.is_ok(), "page {i} faulted: {out:?}");
        }
        let per: Vec<_> = (0..sys.channels())
            .map(|c| sys.channel(c).stats())
            .collect();
        assert!(
            per.iter().filter(|s| s.reads > 0).count() >= 2,
            "traffic must spread across channels: {:?}",
            per.iter().map(|s| s.reads).collect::<Vec<_>>()
        );
        let total = sys.controller_stats_total();
        assert_eq!(per.iter().map(|s| s.reads).sum::<u64>(), total.reads);
        assert_eq!(per.iter().map(|s| s.writes).sum::<u64>(), total.writes);
        assert_eq!(
            per.iter().map(|s| s.mac_cycles_added).sum::<u64>(),
            total.mac_cycles_added
        );
    }

    #[test]
    fn four_channel_pipeline_is_deterministic_and_complete() {
        let run = || {
            let mut sys = system_n(true, 4);
            let (space, base) = setup(&mut sys, 32);
            cold_start(&mut sys, &space);
            let ids: Vec<u64> = (0..32)
                .map(|i| sys.pipe_issue(VirtAddr::new(base + i * 4096), i % 3 == 0))
                .collect();
            while sys.pipe_pending() > 0 {
                sys.pipe_step();
            }
            let done = sys.pipe_take_completed();
            assert_eq!(done.len(), ids.len(), "no in-flight op may be dropped");
            done
        };
        let a = run();
        let b = run();
        for ((ida, outa), (idb, outb)) in a.iter().zip(&b) {
            assert_eq!(ida, idb, "completion order must be deterministic");
            assert_eq!(outa.cycles(), outb.cycles());
            assert!(outa.is_ok());
        }
    }
}
