//! Single-core simulation driver.
//!
//! Two drivers share one machine model: [`run_blocking`] executes each
//! memory operation to completion (the pre-pipeline model, kept as the
//! byte-identity reference), while [`run`] issues a bounded window of
//! in-flight operations ([`MemSysConfig::mlp`]) against the pipelined
//! memory system. With `mlp = 1` the windowed driver retires each op before
//! the next instruction issues and reproduces the blocking driver's cycle
//! count and cache state bit for bit.

use dram::{DramDevice, DramGeometry, DramTiming, RowhammerConfig};
use memsys::system::OsPort;
use memsys::{MemSysConfig, MemoryController, MemorySystem};
use pagetable::addr::VirtAddr;
use pagetable::space::AddressSpace;
use pagetable::x86_64::PteFlags;
use pagetable::PAGE_SIZE;
use ptguard::{PtGuardConfig, PtGuardEngine};
use workloads::tracegen::{Op, TraceGenerator};
use workloads::WorkloadProfile;

use crate::driver::WindowedDriver;
use crate::source::OpSource;

/// A fully-built simulated machine for one workload.
///
/// Generic over the instruction source: `Machine` (the default) generates
/// ops live, `Machine<TraceReader>` replays a recorded trace.
#[derive(Debug)]
pub struct Machine<S: OpSource = TraceGenerator> {
    /// The memory hierarchy (device + controller + caches + TLB).
    pub sys: MemorySystem,
    /// The workload's address space (page tables live in simulated DRAM).
    pub space: AddressSpace,
    /// The instruction source (live generator or trace replay).
    pub source: S,
}

/// Result of one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Instructions executed.
    pub instructions: u64,
    /// Cycles consumed.
    pub cycles: u64,
    /// LLC misses (demand + page-walk) per kilo-instruction.
    pub mpki: f64,
    /// Page walks performed.
    pub walks: u64,
    /// PT-Guard integrity faults (0 in benign runs).
    pub integrity_faults: u64,
    /// MAC computations performed on the read path (0 without an engine).
    pub mac_computations: u64,
    /// Memory operations (loads + stores) the run issued. Deterministic
    /// for a given workload/seed — the orchestrator's throughput events
    /// divide this by wall time, never the other way around.
    pub mem_ops: u64,
}

impl RunResult {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles.max(1) as f64
    }
}

/// The protection mounted at the memory controller for a run.
#[derive(Debug, Clone, Copy)]
pub enum Protection {
    /// Unprotected baseline.
    None,
    /// PT-Guard with the given configuration.
    PtGuard(PtGuardConfig),
    /// Conventional whole-memory integrity (separate MAC table, 12.5 %
    /// storage) — the Sections I / VIII-D comparison point.
    FullMemoryMac,
}

/// Builds the simulated machine for `profile`.
///
/// `guard` mounts a PT-Guard engine with that configuration; `None` builds
/// the unprotected baseline. The DRAM device is Rowhammer-immune here —
/// performance runs model benign operation (Section IV-H).
///
/// # Panics
///
/// Panics if the workload footprint exceeds the DRAM capacity.
#[must_use]
pub fn build_machine(
    profile: WorkloadProfile,
    guard: Option<PtGuardConfig>,
    seed: u64,
    dram_gb: u64,
) -> Machine {
    let protection = match guard {
        Some(cfg) => Protection::PtGuard(cfg),
        None => Protection::None,
    };
    build_machine_with(profile, protection, seed, dram_gb)
}

/// [`build_machine`] with the full [`Protection`] choice.
///
/// # Panics
///
/// Panics if the workload footprint exceeds the DRAM capacity.
#[must_use]
pub fn build_machine_with(
    profile: WorkloadProfile,
    protection: Protection,
    seed: u64,
    dram_gb: u64,
) -> Machine {
    build_machine_from_source(
        TraceGenerator::new(profile, seed),
        profile,
        protection,
        dram_gb,
    )
}

/// Builds the machine around an arbitrary instruction source.
///
/// `profile` still determines the mapped address span and must match the
/// source's footprint (for a trace replay, the profile named in the trace
/// header). The machine build is seed-independent, so a replayed machine
/// is identical to the live one the trace was recorded on.
///
/// # Panics
///
/// Panics if the workload footprint exceeds the DRAM capacity.
#[must_use]
pub fn build_machine_from_source<S: OpSource>(
    source: S,
    profile: WorkloadProfile,
    protection: Protection,
    dram_gb: u64,
) -> Machine<S> {
    build_machine_from_source_cfg(
        source,
        profile,
        protection,
        dram_gb,
        MemSysConfig::default(),
    )
}

/// [`build_machine_from_source`] with an explicit memory-system
/// configuration (e.g. an `mlp` window larger than 1).
///
/// # Panics
///
/// Panics if the workload footprint exceeds the DRAM capacity.
#[must_use]
pub fn build_machine_from_source_cfg<S: OpSource>(
    source: S,
    profile: WorkloadProfile,
    protection: Protection,
    dram_gb: u64,
    mem_cfg: MemSysConfig,
) -> Machine<S> {
    let core_ghz = mem_cfg.core_ghz;
    // One controller (device + engine) per channel; every device keeps the
    // full geometry so physical addresses are uncompacted and the
    // interleave alone decides which store holds a line.
    let controllers: Vec<MemoryController> = (0..mem_cfg.channels.max(1))
        .map(|_| {
            let geometry = DramGeometry::with_capacity(dram_gb << 30);
            let device =
                DramDevice::new(geometry, DramTiming::default(), RowhammerConfig::immune());
            match protection {
                Protection::None => MemoryController::new(device, None, core_ghz),
                Protection::PtGuard(cfg) => {
                    MemoryController::new(device, Some(PtGuardEngine::new(cfg)), core_ghz)
                }
                Protection::FullMemoryMac => {
                    MemoryController::with_full_memory_mac(device, core_ghz)
                }
            }
        })
        .collect();
    let mut sys = MemorySystem::new_multi(mem_cfg, controllers);

    let base = TraceGenerator::HEAP_BASE;
    let pages = profile.hot_pages + profile.stream_pages;
    assert!(
        pages * PAGE_SIZE as u64 + (64 << 20) < (dram_gb << 30),
        "footprint exceeds DRAM"
    );

    // OS model: build the address space through the cache hierarchy so PTE
    // lines acquire MACs when they drain to DRAM. Frames are allocated
    // sequentially — the contiguity the paper's census observes.
    let mut port = OsPort::new(&mut sys);
    let mut space = AddressSpace::new(&mut port, 32).expect("root allocation");
    for i in 0..pages {
        let va = VirtAddr::new(base + i * PAGE_SIZE as u64);
        space
            .map_new(&mut port, va, PteFlags::user_data())
            .expect("mapping");
    }
    let root = space.root();
    sys.set_root(root, 32);
    // Quiesce: page tables reach DRAM (and get MAC-protected).
    sys.flush_caches();
    Machine { sys, space, source }
}

/// Runs `instructions` instructions on a built machine through the
/// pipelined memory system.
///
/// The core is in-order (gem5 `TimingSimpleCPU`-like, matching the paper's
/// pessimistic single-core setup): every instruction costs one cycle, and
/// each memory operation is issued into the pipeline with up to
/// [`MemSysConfig::mlp`] operations in flight. When the window is full the
/// front end stalls until the oldest op retires; ops retire in order, so
/// the core clock advances to `max(issue + latency)` over the window. With
/// `mlp = 1` every op retires before the next instruction issues — the
/// exact blocking model (see [`run_blocking`]), bit for bit.
pub fn run<S: OpSource>(machine: &mut Machine<S>, instructions: u64) -> RunResult {
    let stats_before = machine.sys.stats();
    let mac_before = read_mac_total(machine);
    let mut mem_ops = 0u64;
    // The shared windowed driver: one cycle per instruction, the whole
    // latency kept at retire. With a window of 1 the front-end clock
    // accumulates exactly `1 + out.cycles()` per memory instruction — the
    // blocking sum.
    let mut driver = WindowedDriver::new(machine.sys.config().mlp, 1, 1);
    for _ in 0..instructions {
        driver.tick_instruction();
        let (va, write) = match machine.source.next_op() {
            Op::Compute => continue,
            Op::Load(va) => (va, false),
            Op::Store(va) => (va, true),
        };
        mem_ops += 1;
        driver.mem_op(&mut machine.sys, va, write);
    }
    driver.drain(&mut machine.sys);
    finalize_result(
        machine,
        instructions,
        driver.clock(),
        mem_ops,
        stats_before,
        mac_before,
    )
}

/// Runs `instructions` like [`run`], but issuing every memory op through
/// the per-op polling discipline the event engine replaced (no
/// synchronous-completion fast path). The access stream, MAC
/// computations, and DRAM reads match [`run`] exactly, but cycle counts
/// and IPC diverge at `mlp > 1`: hits occupy window slots here instead
/// of folding at issue, so windows compose differently. Kept as the
/// event-vs-polling benchmark control (`bench memsys`'s `mlp4-poll`
/// row).
pub fn run_polling<S: OpSource>(machine: &mut Machine<S>, instructions: u64) -> RunResult {
    let stats_before = machine.sys.stats();
    let mac_before = read_mac_total(machine);
    let mut mem_ops = 0u64;
    let mut driver = WindowedDriver::new_polling(machine.sys.config().mlp, 1, 1);
    for _ in 0..instructions {
        driver.tick_instruction();
        let (va, write) = match machine.source.next_op() {
            Op::Compute => continue,
            Op::Load(va) => (va, false),
            Op::Store(va) => (va, true),
        };
        mem_ops += 1;
        driver.mem_op(&mut machine.sys, va, write);
    }
    driver.drain(&mut machine.sys);
    finalize_result(
        machine,
        instructions,
        driver.clock(),
        mem_ops,
        stats_before,
        mac_before,
    )
}

/// Runs `instructions` on a built machine with the legacy fully-blocking
/// core: every memory operation completes inline before the next
/// instruction. Kept as the differential reference for the `mlp = 1`
/// byte-identity tests.
pub fn run_blocking<S: OpSource>(machine: &mut Machine<S>, instructions: u64) -> RunResult {
    let mut cycles = 0u64;
    let stats_before = machine.sys.stats();
    let mac_before = read_mac_total(machine);
    let mut mem_ops = 0u64;
    for _ in 0..instructions {
        cycles += 1;
        match machine.source.next_op() {
            Op::Compute => {}
            Op::Load(va) => {
                mem_ops += 1;
                let out = machine.sys.load(va);
                debug_assert!(out.is_ok(), "unexpected fault: {out:?}");
                cycles += out.cycles();
            }
            Op::Store(va) => {
                mem_ops += 1;
                let out = machine.sys.store(va);
                debug_assert!(out.is_ok(), "unexpected fault: {out:?}");
                cycles += out.cycles();
            }
        }
    }
    finalize_result(
        machine,
        instructions,
        cycles,
        mem_ops,
        stats_before,
        mac_before,
    )
}

/// Read-path MAC computations summed over every channel's engine.
fn read_mac_total<S: OpSource>(machine: &Machine<S>) -> u64 {
    (0..machine.sys.channels())
        .filter_map(|c| machine.sys.channel(c).engine())
        .map(|e| e.stats().read_mac_computations)
        .sum()
}

/// Shared [`RunResult`] assembly from the stat deltas of a run.
fn finalize_result<S: OpSource>(
    machine: &Machine<S>,
    instructions: u64,
    cycles: u64,
    mem_ops: u64,
    stats_before: memsys::system::SystemStats,
    mac_before: u64,
) -> RunResult {
    let stats = machine.sys.stats();
    let llc_misses = (stats.llc_misses + stats.walk_llc_misses)
        - (stats_before.llc_misses + stats_before.walk_llc_misses);
    let mac_computations = read_mac_total(machine) - mac_before;
    RunResult {
        instructions,
        cycles,
        mpki: 1000.0 * llc_misses as f64 / instructions as f64,
        walks: stats.walks - stats_before.walks,
        integrity_faults: stats.integrity_faults - stats_before.integrity_faults,
        mac_computations,
        mem_ops,
    }
}

/// One-shot convenience: build, warm up (caches and TLB fill without being
/// measured — the paper fast-forwards 25 G instructions with KVM), then run
/// a measured region of `instructions`.
#[must_use]
pub fn simulate_workload(
    profile: WorkloadProfile,
    guard: Option<PtGuardConfig>,
    instructions: u64,
    seed: u64,
) -> RunResult {
    let mut machine = build_machine(profile, guard, seed, 4);
    let _ = run(&mut machine, instructions); // warm-up, discarded
    run(&mut machine, instructions)
}

/// [`simulate_workload`] with an explicit memory-system configuration
/// (e.g. an `mlp` window larger than 1). Same warm-up/measure discipline.
#[must_use]
pub fn simulate_workload_cfg(
    profile: WorkloadProfile,
    guard: Option<PtGuardConfig>,
    instructions: u64,
    seed: u64,
    mem_cfg: MemSysConfig,
) -> RunResult {
    let protection = match guard {
        Some(cfg) => Protection::PtGuard(cfg),
        None => Protection::None,
    };
    let mut machine = build_machine_from_source_cfg(
        TraceGenerator::new(profile, seed),
        profile,
        protection,
        4,
        mem_cfg,
    );
    let _ = run(&mut machine, instructions);
    run(&mut machine, instructions)
}

/// [`simulate_workload`] with the full [`Protection`] choice.
#[must_use]
pub fn simulate_workload_with(
    profile: WorkloadProfile,
    protection: Protection,
    instructions: u64,
    seed: u64,
) -> RunResult {
    let mut machine = build_machine_with(profile, protection, seed, 4);
    let _ = run(&mut machine, instructions);
    run(&mut machine, instructions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::profiles::by_name;

    const INSTRS: u64 = 150_000;

    #[test]
    fn baseline_runs_without_faults() {
        let p = by_name("xz").unwrap();
        let r = simulate_workload(p, None, INSTRS, 1);
        assert_eq!(r.integrity_faults, 0);
        assert!(r.ipc() > 0.0 && r.ipc() <= 1.0);
        assert!(r.walks > 0, "streaming must cause TLB misses");
    }

    #[test]
    fn guarded_run_is_slower_but_correct() {
        let p = by_name("xalancbmk").unwrap();
        let base = simulate_workload(p, None, INSTRS, 1);
        let guard = simulate_workload(p, Some(PtGuardConfig::default()), INSTRS, 1);
        assert_eq!(guard.integrity_faults, 0);
        assert!(guard.cycles >= base.cycles, "PT-Guard cannot be faster");
        let slowdown = guard.cycles as f64 / base.cycles as f64 - 1.0;
        assert!(slowdown < 0.12, "slowdown {slowdown} implausibly high");
        assert!(guard.mac_computations > 0);
    }

    #[test]
    fn optimized_engine_computes_fewer_macs() {
        let p = by_name("lbm").unwrap();
        let base = simulate_workload(p, Some(PtGuardConfig::default()), INSTRS, 2);
        let opt = simulate_workload(p, Some(PtGuardConfig::optimized()), INSTRS, 2);
        assert!(
            opt.mac_computations * 10 < base.mac_computations,
            "identifier must eliminate most MAC computations ({} vs {})",
            opt.mac_computations,
            base.mac_computations
        );
    }

    #[test]
    fn mpki_tracks_profile_targets() {
        // High- and low-MPKI profiles must separate cleanly, and the
        // measured value should be in the target's neighbourhood.
        let hot = simulate_workload(by_name("povray").unwrap(), None, INSTRS, 3);
        let cold = simulate_workload(by_name("mcf").unwrap(), None, INSTRS, 3);
        assert!(hot.mpki < 2.0, "povray MPKI = {}", hot.mpki);
        assert!(cold.mpki > 7.0, "mcf MPKI = {}", cold.mpki);
    }

    #[test]
    fn full_memory_mac_costs_more_than_ptguard() {
        // The Sections I / VIII-D motivation: conventional whole-memory
        // integrity pays extra DRAM accesses; PT-Guard pays only latency.
        let p = by_name("sssp").unwrap(); // pointer-chaser: worst case for a MAC table
        let base = simulate_workload_with(p, Protection::None, INSTRS, 4);
        let guard =
            simulate_workload_with(p, Protection::PtGuard(PtGuardConfig::default()), INSTRS, 4);
        let full = simulate_workload_with(p, Protection::FullMemoryMac, INSTRS, 4);
        let s_guard = guard.cycles as f64 / base.cycles as f64 - 1.0;
        let s_full = full.cycles as f64 / base.cycles as f64 - 1.0;
        assert!(
            s_full > 2.0 * s_guard,
            "full-memory {s_full} vs PT-Guard {s_guard}"
        );
        assert_eq!(
            full.integrity_faults, 0,
            "benign run must verify everywhere"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let p = by_name("bfs").unwrap();
        let a = simulate_workload(p, Some(PtGuardConfig::default()), 50_000, 9);
        let b = simulate_workload(p, Some(PtGuardConfig::default()), 50_000, 9);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.walks, b.walks);
    }
}
