//! The 64-entry fully-associative TLB (Table III).

use pagetable::addr::Frame;
use pagetable::x86_64::Pte;

/// A TLB entry: cached leaf translation.
#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    vpn: u64,
    pte: Pte,
    lru: u64,
}

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (each triggers a page walk).
    pub misses: u64,
}

impl TlbStats {
    /// Misses per lookup.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A fully-associative, LRU TLB.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<TlbEntry>,
    capacity: usize,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero: a zero-capacity TLB would make every
    /// `insert` hunt for a victim in an empty entry list.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be at least one entry");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// Looks up a virtual page number; returns the cached leaf PTE.
    pub fn lookup(&mut self, vpn: u64) -> Option<Pte> {
        self.clock += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.vpn == vpn) {
            e.lru = self.clock;
            self.stats.hits += 1;
            return Some(e.pte);
        }
        self.stats.misses += 1;
        None
    }

    /// Installs a translation (after a successful page walk).
    pub fn insert(&mut self, vpn: u64, pte: Pte) {
        self.clock += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.vpn == vpn) {
            e.pte = pte;
            e.lru = self.clock;
            return;
        }
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(victim);
        }
        self.entries.push(TlbEntry {
            vpn,
            pte,
            lru: self.clock,
        });
    }

    /// Invalidates one page (e.g. on unmap).
    pub fn invalidate(&mut self, vpn: u64) {
        self.entries.retain(|e| e.vpn != vpn);
    }

    /// Full TLB shootdown.
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// The frame a cached translation maps to, if present (test helper).
    #[must_use]
    pub fn peek_frame(&self, vpn: u64) -> Option<Frame> {
        self.entries
            .iter()
            .find(|e| e.vpn == vpn)
            .map(|e| e.pte.frame())
    }

    /// Statistics.
    #[must_use]
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagetable::x86_64::PteFlags;

    fn pte(f: u64) -> Pte {
        Pte::new(Frame(f), PteFlags::user_data())
    }

    #[test]
    fn hit_after_insert() {
        let mut t = Tlb::new(4);
        assert!(t.lookup(100).is_none());
        t.insert(100, pte(1));
        assert_eq!(t.lookup(100).unwrap().frame(), Frame(1));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut t = Tlb::new(2);
        t.insert(1, pte(1));
        t.insert(2, pte(2));
        t.lookup(1); // 1 becomes MRU
        t.insert(3, pte(3)); // evicts 2
        assert!(t.peek_frame(2).is_none());
        assert!(t.peek_frame(1).is_some());
        assert!(t.peek_frame(3).is_some());
    }

    #[test]
    fn invalidate_and_flush() {
        let mut t = Tlb::new(4);
        t.insert(1, pte(1));
        t.insert(2, pte(2));
        t.invalidate(1);
        assert!(t.peek_frame(1).is_none());
        assert!(t.peek_frame(2).is_some());
        t.flush();
        assert!(t.peek_frame(2).is_none());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut t = Tlb::new(2);
        t.insert(1, pte(1));
        t.insert(1, pte(9));
        assert_eq!(t.peek_frame(1), Some(Frame(9)));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = Tlb::new(0);
    }
}
