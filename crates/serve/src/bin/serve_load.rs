//! `serve-load` — open-loop load generator for a running serve instance.
//!
//! ```text
//! serve-load ADDR [--rates A,B,C] [--requests N] [--seed S]
//!            [--corpus N] [--shutdown] [--out FILE]
//! ```
//!
//! Replays a census-derived corpus at each target rate (requests/second)
//! on a fresh connection, records coordinated-omission-free latencies,
//! and prints a `ptguard-serve-load/v1` JSON report (p50/p99/p999 and
//! achieved-versus-target throughput per rate). `--shutdown` sends the
//! in-band shutdown frame afterwards and waits for the ack — the server
//! process then exits on its own.

use std::process::ExitCode;

use orchestrator::ThreadPool;
use serve::client::Client;
use serve::core::Engine;
use serve::corpus::census_corpus;
use serve::load::{load_report_json, run_load, LoadConfig};
use serve::proto::{Request, Response};

fn usage() -> ! {
    eprintln!(
        "usage: serve-load ADDR [--rates A,B,C] [--requests N] [--seed S] \
         [--corpus N] [--shutdown] [--out FILE]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut addr: Option<String> = None;
    let mut cfg = LoadConfig::default();
    let mut corpus_n = 4_096usize;
    let mut shutdown = false;
    let mut out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rates" => {
                let spec = args.next().unwrap_or_else(|| usage());
                cfg.rates = spec
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--requests" => {
                cfg.requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                cfg.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--corpus" => {
                corpus_n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--shutdown" => shutdown = true,
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other if addr.is_none() && !other.starts_with('-') => addr = Some(other.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    let Some(addr) = addr else { usage() };

    // Build the replay corpus locally (the same embed path the server
    // runs, so verify responses are checkable).
    let engine = Engine::new(&ptguard::PtGuardConfig::default());
    let pool = ThreadPool::new(0);
    let corpus = census_corpus(
        &workloads::pte_census::CensusConfig::default(),
        corpus_n,
        &engine,
        &pool,
    );

    let reports = match run_load(addr.as_str(), &cfg, &corpus) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve-load: {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if shutdown {
        match Client::connect(addr.as_str()).and_then(|mut c| {
            c.call(&Request::Shutdown)
                .map_err(|e| std::io::Error::other(e.to_string()))
        }) {
            Ok(Response::ShutdownAck { served, batches }) => {
                eprintln!("server drained: {served} served in {batches} batches");
            }
            Ok(other) => {
                eprintln!("serve-load: unexpected shutdown reply: {other:?}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("serve-load: shutdown: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let json = load_report_json(&reports).render_pretty();
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("serve-load: write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("{json}");

    let errors: u64 = reports.iter().map(|r| r.errors).sum();
    if errors > 0 {
        eprintln!("serve-load: {errors} errors");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
