//! Section VI-E analytics: Equations 1 and 2, the k-selection rule, and the
//! headline "effective 66-bit MAC, >10⁴ years" numbers.

use ptguard::correct::G_MAX;
use ptguard::security::{
    attack_years, effective_mac_bits, p_escape, p_uncorrectable, select_k, SecuritySummary,
};

use crate::report::Table;

/// Renders the k-sweep table plus the headline summary.
#[must_use]
pub fn render() -> String {
    let n = 96;
    let mut t = Table::new(vec![
        "k (MAC faults tolerated)",
        "p_escape (Eq. 1)",
        "n_eff (bits)",
        "p_uncorr @ p=1% (Eq. 2)",
        "p_uncorr @ p=0.2%",
        "attack time (years)",
    ]);
    for k in 0..=8u32 {
        let pe = p_escape(n, k, G_MAX);
        t.row(vec![
            k.to_string(),
            format!("{pe:.3e}"),
            format!("{:.1}", effective_mac_bits(n, k, G_MAX)),
            format!("{:.4e}", p_uncorrectable(n, k, 0.01)),
            format!("{:.4e}", p_uncorrectable(n, k, 0.002)),
            format!("{:.2e}", attack_years(pe, 50.0)),
        ]);
    }
    let s = SecuritySummary::paper_default();
    format!(
        "Section VI-E: security of the fault-tolerant MAC (n = {n}, G_max = {G_MAX})\n{}\nselected k at p_flip=1%: {} (paper: 4)  |  selected k at p_flip=0.2%: {}\nheadline: k={} -> n_eff = {:.1} bits, p_uncorrectable = {:.3}%, attack time {:.1e} years\nwithout correction (exact match, 1 guess): n_eff = {:.1} bits, {:.1e} years\n",
        t.render(),
        select_k(n, 0.01, 0.01),
        select_k(n, 0.002, 0.01),
        s.k,
        s.n_eff,
        100.0 * s.p_uncorrectable_lpddr4,
        s.attack_years,
        effective_mac_bits(n, 0, 1),
        attack_years(p_escape(n, 0, 1), 50.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_paper_headlines() {
        let s = render();
        assert!(s.contains("selected k at p_flip=1%: 4"));
        assert!(s.contains("n_eff = 65.7"), "{s}"); // 65.73 bits, the paper rounds to ~66
    }
}
