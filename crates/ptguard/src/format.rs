//! PTE-format abstraction: PT-Guard on x86_64 *and* ARMv8.
//!
//! Section IV-F: "Without loss of generality, we use x86_64 page table
//! format for PT-Guard, but the principles apply to ARMv8 or any other
//! ISA." This module makes that claim executable. A [`PteFormat`] describes
//! where the unused (MAC) bits, the OS-zeroed ignored (identifier) bits,
//! and the MAC-protected bits live inside an 8-byte entry; every other
//! layer (pattern match, MAC, engine, corrector) is parameterized over it.
//!
//! At the paper's ≤1 TB design point (`M = 40`):
//!
//! * **x86_64** (Table I): 12 unused PFN bits per PTE at 51:40 (MAC), 7
//!   ignored bits at 58:52 (identifier ⇒ 56 bits/line).
//! * **ARMv8** (Table II): the 40-bit PFN is split — `PFN[37:0]` at bits
//!   49:12 and `PFN[39:38]` at bits 9:8 — so the 12 unused bits per
//!   descriptor are 49:40 *plus* 9:8 (MAC), and the 4 ignored bits at
//!   58:55 carry a 32-bit identifier.

use pagetable::{armv8, x86_64};

/// One contiguous run of bits inside an 8-byte entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First bit of the run.
    pub shift: u32,
    /// Run width in bits.
    pub width: u32,
}

impl Segment {
    /// Mask selecting this segment within a word.
    #[must_use]
    pub const fn mask(self) -> u64 {
        (((1u128 << self.width) - 1) as u64) << self.shift
    }
}

/// The page-table-entry format PT-Guard is protecting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PteFormat {
    /// x86_64 4-level PTEs (Table I of the paper).
    #[default]
    X86_64,
    /// ARMv8-A stage-1 descriptors (Table II).
    ArmV8,
}

const X86_MAC: &[Segment] = &[Segment {
    shift: 40,
    width: 12,
}];
const X86_ID: &[Segment] = &[Segment {
    shift: 52,
    width: 7,
}];
const ARM_MAC: &[Segment] = &[
    Segment {
        shift: 40,
        width: 10,
    },
    Segment { shift: 8, width: 2 },
];
const ARM_ID: &[Segment] = &[Segment {
    shift: 55,
    width: 4,
}];

impl PteFormat {
    /// Per-entry bit runs that hold the MAC share (12 bits per entry, 96
    /// per line, in both formats at `M = 40`).
    #[must_use]
    pub const fn mac_segments(self) -> &'static [Segment] {
        match self {
            PteFormat::X86_64 => X86_MAC,
            PteFormat::ArmV8 => ARM_MAC,
        }
    }

    /// Per-entry bit runs that hold the identifier share.
    #[must_use]
    pub const fn id_segments(self) -> &'static [Segment] {
        match self {
            PteFormat::X86_64 => X86_ID,
            PteFormat::ArmV8 => ARM_ID,
        }
    }

    /// MAC bits per entry.
    #[must_use]
    pub fn mac_bits_per_entry(self) -> u32 {
        self.mac_segments().iter().map(|s| s.width).sum()
    }

    /// Identifier bits per entry.
    #[must_use]
    pub fn id_bits_per_entry(self) -> u32 {
        self.id_segments().iter().map(|s| s.width).sum()
    }

    /// Total identifier width per line (x86_64: 56; ARMv8: 32).
    #[must_use]
    pub fn id_bits(self) -> u32 {
        8 * self.id_bits_per_entry()
    }

    /// Per-word mask of the MAC region.
    #[must_use]
    pub fn mac_field_mask(self) -> u64 {
        self.mac_segments()
            .iter()
            .map(|s| s.mask())
            .fold(0, |a, m| a | m)
    }

    /// Per-word mask of the identifier region.
    #[must_use]
    pub fn id_field_mask(self) -> u64 {
        self.id_segments()
            .iter()
            .map(|s| s.mask())
            .fold(0, |a, m| a | m)
    }

    /// Per-word mask of the bits the MAC protects (Table IV and its ARMv8
    /// analogue: everything except the accessed bit, the MAC region, and
    /// the ignored/identifier region).
    ///
    /// # Panics
    ///
    /// Panics if `max_phys_bits` is unsupported for the format (ARMv8
    /// support is implemented at the paper's `M = 40` design point).
    #[must_use]
    pub fn protected_mask(self, max_phys_bits: u32) -> u64 {
        match self {
            PteFormat::X86_64 => x86_64::mac_protected_mask(max_phys_bits),
            PteFormat::ArmV8 => {
                assert_eq!(
                    max_phys_bits, 40,
                    "ARMv8 segments are fixed at the 1 TB design point"
                );
                // Everything except: accessed (bit 10), the MAC segments
                // (49:40 and 9:8), and the ignored bits 58:55.
                let excluded =
                    armv8::bits::ACCESSED | self.mac_field_mask() | armv8::bits::IGNORED_MASK;
                !excluded
            }
        }
    }

    /// Per-word mask of the *in-use* PFN bits (what the corrector treats as
    /// the PFN for contiguity reconstruction; bit 12 is the LSB in both
    /// formats at `M = 40`).
    #[must_use]
    pub fn pfn_mask(self, max_phys_bits: u32) -> u64 {
        match self {
            PteFormat::X86_64 => x86_64::bits::PFN_MASK & ((1u64 << max_phys_bits) - 1),
            PteFormat::ArmV8 => {
                assert_eq!(
                    max_phys_bits, 40,
                    "ARMv8 segments are fixed at the 1 TB design point"
                );
                armv8::bits::PFN_LOW_MASK & ((1u64 << max_phys_bits) - 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_formats_pool_96_mac_bits() {
        for fmt in [PteFormat::X86_64, PteFormat::ArmV8] {
            assert_eq!(fmt.mac_bits_per_entry(), 12, "{fmt:?}");
            assert_eq!(fmt.mac_field_mask().count_ones(), 12);
        }
    }

    #[test]
    fn identifier_widths_match_ignored_fields() {
        assert_eq!(PteFormat::X86_64.id_bits(), 56);
        assert_eq!(PteFormat::ArmV8.id_bits(), 32);
    }

    #[test]
    fn masks_are_disjoint_per_format() {
        for fmt in [PteFormat::X86_64, PteFormat::ArmV8] {
            let mac = fmt.mac_field_mask();
            let id = fmt.id_field_mask();
            let prot = fmt.protected_mask(40);
            assert_eq!(mac & id, 0, "{fmt:?}");
            assert_eq!(mac & prot, 0, "{fmt:?}");
            assert_eq!(id & prot, 0, "{fmt:?}");
        }
    }

    #[test]
    fn armv8_mac_region_covers_split_pfn() {
        let m = PteFormat::ArmV8.mac_field_mask();
        assert_ne!(
            m & (0b11 << 8),
            0,
            "`PFN[39:38]` bits must be in the MAC region"
        );
        assert_ne!(m & (0x3ff << 40), 0);
        assert_eq!(
            m & (1 << 10),
            0,
            "accessed bit must not be in the MAC region"
        );
    }

    #[test]
    fn armv8_protected_mask_counts() {
        // 64 − 12 (MAC) − 4 (ignored) − 1 (accessed) = 47 protected bits.
        assert_eq!(PteFormat::ArmV8.protected_mask(40).count_ones(), 47);
    }

    #[test]
    fn segment_mask_arithmetic() {
        let s = Segment {
            shift: 40,
            width: 12,
        };
        assert_eq!(s.mask(), 0xfff << 40);
        let s = Segment { shift: 8, width: 2 };
        assert_eq!(s.mask(), 0b11 << 8);
    }

    #[test]
    #[should_panic(expected = "design point")]
    fn armv8_off_design_point_rejected() {
        let _ = PteFormat::ArmV8.protected_mask(34);
    }
}
