//! Pipeline equivalence pins: the windowed driver (`simx::run`) at
//! `mlp = 1` must be *byte-identical* to the legacy blocking driver
//! (`simx::run_blocking`) — same cycles, same miss counts, same MAC work —
//! for every Figure 6 profile. The pipeline is a refactor of the same
//! event sequence, not a new timing model; any divergence here is a bug.
//!
//! A second pin checks the overlapped mode (`mlp > 1`) is deterministic:
//! two identical runs agree exactly, and overlap can only help.

use memsys::MemSysConfig;
use simx::runner::{build_machine_from_source_cfg, run, run_blocking, Protection, RunResult};
use workloads::tracegen::TraceGenerator;
use workloads::{WorkloadProfile, ALL_WORKLOADS};

const INSTRS: u64 = 40_000;

fn run_one(profile: WorkloadProfile, seed: u64, mlp: usize, blocking: bool) -> RunResult {
    let mem_cfg = MemSysConfig {
        mlp,
        ..MemSysConfig::default()
    };
    let mut machine = build_machine_from_source_cfg(
        TraceGenerator::new(profile, seed),
        profile,
        Protection::PtGuard(ptguard::PtGuardConfig::default()),
        4,
        mem_cfg,
    );
    if blocking {
        let _ = run_blocking(&mut machine, INSTRS);
        run_blocking(&mut machine, INSTRS)
    } else {
        let _ = run(&mut machine, INSTRS);
        run(&mut machine, INSTRS)
    }
}

#[test]
fn windowed_driver_at_mlp1_is_byte_identical_to_blocking() {
    let mut drift = String::new();
    for (i, w) in ALL_WORKLOADS.iter().enumerate() {
        let seed = 0x91e + i as u64;
        let b = run_one(*w, seed, 1, true);
        let p = run_one(*w, seed, 1, false);
        if (
            b.cycles,
            b.walks,
            b.mac_computations,
            b.mem_ops,
            b.integrity_faults,
        ) != (
            p.cycles,
            p.walks,
            p.mac_computations,
            p.mem_ops,
            p.integrity_faults,
        ) || b.mpki.to_bits() != p.mpki.to_bits()
        {
            drift.push_str(&format!(
                "{:>10}: blocking {b:?} vs pipelined {p:?}\n",
                w.name
            ));
        }
    }
    assert!(drift.is_empty(), "mlp=1 drift:\n{drift}");
}

#[test]
fn overlapped_mode_is_deterministic_and_never_slower() {
    // Overlap determinism matters as much as speed: the mlp artefact and
    // BENCH_memsys are committed, so two hosts must agree exactly.
    for name in ["sssp", "xalancbmk", "lbm"] {
        let w = *ALL_WORKLOADS.iter().find(|w| w.name == name).unwrap();
        let base = run_one(w, 7, 1, false);
        for mlp in [2usize, 4] {
            let a = run_one(w, 7, mlp, false);
            let b = run_one(w, 7, mlp, false);
            assert_eq!(a.cycles, b.cycles, "{name} mlp={mlp} nondeterministic");
            assert_eq!(a.walks, b.walks, "{name} mlp={mlp} nondeterministic");
            assert!(
                a.cycles <= base.cycles,
                "{name}: overlap (mlp={mlp}, {} cycles) cannot exceed blocking ({})",
                a.cycles,
                base.cycles
            );
        }
    }
}
