//! # Differential-testing and fault-injection oracle
//!
//! Every headline number this reproduction reports rests on the fast
//! set-associative caches, TLB, MMU cache, page walker, and MAC engine
//! being *semantically equivalent* to their obvious reference definitions.
//! This crate makes that claim executable, three ways:
//!
//! * [`refmodel`] + [`refwalk`] — deliberately naive reference models (a
//!   recency-ordered `Vec` per set, a flat `BTreeMap`-backed walk
//!   interpreter) run op-for-op against `memsys`/`pagetable` under seeded
//!   SplitMix64 operation streams ([`ops`]), with the drivers in [`diff`].
//!   On divergence, a ddmin-style shrinking loop reduces the stream to a
//!   minimal reproducer and serialises it with the `trace` crate's binary
//!   primitives.
//! * [`macoracle`] — a bit-level MAC oracle that rebuilds the Table IV
//!   protected masks by explicit bit enumeration and recomputes the
//!   QARMA-128 PTE MAC independently of `ptguard::PteMac`, asserting
//!   embed→extract→verify round-trips and rejection of every 1-bit (and,
//!   scale permitting, 2-bit) protected-bit flip. It also implements the
//!   paper's literal `Q(Cᵢ ⊕ Aᵢ)` formula, whose chunk-swap aliasing the
//!   sweep must catch — the regression that motivated this crate.
//! * [`campaign`] — a Rowhammer fault-injection campaign through the full
//!   `MemorySystem` + `MemoryController` stack asserting the Section VI
//!   invariants: faults in protected PTE bits are never silently consumed,
//!   the correction-step distribution covers every `CorrectionStep`, and
//!   benign traffic yields zero false positives.
//!
//! The `exp oracle` artefact (crate `experiments`) runs all three as one
//! seeded, cached, `--jobs`-parallel orchestrator job.

#![warn(missing_docs)]

pub mod campaign;
pub mod diff;
pub mod macoracle;
pub mod ops;
pub mod refmodel;
pub mod refwalk;

pub use campaign::{CampaignConfig, CampaignResult};
pub use diff::Divergence;
pub use macoracle::RefMac;
